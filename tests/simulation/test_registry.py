"""Tests for the named scenario registry."""

import pickle

import pytest

from repro.simulation import registry
from repro.simulation.results import RateSummary, SeriesResult

EXPECTED_SCENARIOS = {
    "fig7-mutuality",
    "fig9-transitivity",
    "table2-properties",
    "fig13-delegation",
    "fig15-environment",
    "eq24-selfdelegation",
    "fig8-inference",
    "fig14-activetime",
    "fig16-light",
    # The remaining bench families, folded in so `repro sweep` can drive
    # every bench through a named spec.
    "table1-connectivity",
    "fig12-overhead",
    "ablation-attacks",
    "ablation-beta",
    "ablation-combiner",
    "ablation-energy",
    "ablation-timedecay",
    "ablation-whitewashing",
}


class TestLookup:
    def test_every_bench_family_registered(self):
        assert EXPECTED_SCENARIOS <= set(registry.names())

    def test_names_sorted(self):
        assert registry.names() == sorted(registry.names())

    def test_specs_align_with_names(self):
        assert [spec.name for spec in registry.specs()] == registry.names()

    def test_unknown_scenario_lists_known_names(self):
        with pytest.raises(KeyError, match="fig7-mutuality"):
            registry.get("fig99-nope")

    def test_kinds_valid(self):
        assert all(
            spec.kind in ("rates", "series") for spec in registry.specs()
        )


class TestParams:
    def test_defaults_then_smoke_then_overrides(self):
        spec = registry.get("fig7-mutuality")
        params = spec.params(smoke=True, threshold=0.6)
        assert params["network"] == "twitter"  # smoke override
        assert params["threshold"] == 0.6  # explicit override
        assert params["warmup_interactions"] == 5  # smoke override

    def test_unknown_override_rejected(self):
        spec = registry.get("fig7-mutuality")
        with pytest.raises(ValueError, match="unknown parameter"):
            spec.params(warp_factor=9)

    def test_smoke_keys_are_subset_of_defaults(self):
        for spec in registry.specs():
            assert set(spec.smoke) <= set(spec.defaults), spec.name


class TestRun:
    @pytest.mark.parametrize("name", sorted(EXPECTED_SCENARIOS))
    def test_reduced_type_matches_kind(self, name):
        spec = registry.get(name)
        result = spec.run(seed=1, smoke=True)
        expected = RateSummary if spec.kind == "rates" else SeriesResult
        assert isinstance(result, expected)

    def test_bound_is_picklable(self):
        for spec in registry.specs():
            pickle.dumps(spec.bound(smoke=True))

    def test_bound_equals_run(self):
        spec = registry.get("fig15-environment")
        assert spec.bound(smoke=True)(4) == spec.run(seed=4, smoke=True)

    def test_run_is_deterministic_per_seed(self):
        spec = registry.get("fig7-mutuality")
        assert spec.run(seed=2, smoke=True) == spec.run(seed=2, smoke=True)
        assert spec.run(seed=2, smoke=True) != spec.run(seed=3, smoke=True)


def _build_counting(params):
    _BUILD_CALLS.append(dict(params))
    return {"token": object()}


def _seed_identity(arena, params, seed):
    return arena


def _reduce_noop(result):
    from repro.simulation.results import SeriesResult

    return SeriesResult("noop", [0.0])


_BUILD_CALLS = []


@pytest.fixture
def synthetic_spec(request):
    """Register a throwaway spec (cleaned up afterwards)."""
    def make(name, reusable):
        spec = registry.ScenarioSpec(
            name=name,
            kind="series",
            description="synthetic arena test spec",
            defaults={"knob": 1},
            _build=_build_counting,
            _seed_run=_seed_identity,
            _reduce=_reduce_noop,
            reusable=reusable,
        )
        registry._register(spec)
        request.addfinalizer(lambda: registry._REGISTRY.pop(name, None))
        return spec

    _BUILD_CALLS.clear()
    registry.clear_arenas()
    return make


class TestArenas:
    def test_build_once_is_shared_across_seeds(self, synthetic_spec):
        spec = synthetic_spec("synthetic-reusable", reusable=True)
        first = spec.build_once()
        second = spec.build_once()
        assert first is second
        assert len(_BUILD_CALLS) == 1
        # run_full goes through the same store: still no rebuild.
        spec.run_full(seed=1)
        spec.run_full(seed=2)
        assert len(_BUILD_CALLS) == 1

    def test_different_params_get_different_arenas(self, synthetic_spec):
        spec = synthetic_spec("synthetic-params", reusable=True)
        assert spec.build_once() is not spec.build_once(knob=2)
        assert len(_BUILD_CALLS) == 2

    def test_non_reusable_spec_rebuilds_per_seed(self, synthetic_spec):
        spec = synthetic_spec("synthetic-fresh", reusable=False)
        assert spec.build_once() is not spec.build_once()
        spec.run_full(seed=1)
        spec.run_full(seed=1)
        assert len(_BUILD_CALLS) == 4
        assert registry.arena_store_size() == 0

    def test_warm_arena_prebuilds(self, synthetic_spec):
        spec = synthetic_spec("synthetic-warm", reusable=True)
        registry.warm_arena(spec.name, spec.params_key())
        assert len(_BUILD_CALLS) == 1
        spec.run_full(seed=5)
        assert len(_BUILD_CALLS) == 1

    def test_warm_arena_ignores_unknown_and_non_reusable(self, synthetic_spec):
        registry.warm_arena("no-such-scenario", ())
        spec = synthetic_spec("synthetic-skip", reusable=False)
        registry.warm_arena(spec.name, spec.params_key())
        assert _BUILD_CALLS == []

    def test_clear_arenas_forces_rebuild(self, synthetic_spec):
        spec = synthetic_spec("synthetic-clear", reusable=True)
        spec.build_once()
        registry.clear_arenas()
        spec.build_once()
        assert len(_BUILD_CALLS) == 2

    def test_run_with_seed_uses_the_given_arena(self, synthetic_spec):
        spec = synthetic_spec("synthetic-explicit", reusable=True)
        arena = spec.build_once()
        assert spec.run_with_seed(arena, seed=3) is arena

    def test_unhashable_override_values_are_normalized(self):
        # A list override must work (hash into the arena store / cache
        # key) exactly like the equivalent tuple.
        spec = registry.get("ablation-beta")
        as_list = spec.params_key(smoke=True, betas=[0.5, 0.9])
        as_tuple = spec.params_key(smoke=True, betas=(0.5, 0.9))
        assert as_list == as_tuple
        hash(as_list)
        result = spec.run(seed=1, smoke=True, betas=[0.5, 0.9])
        assert result == spec.run(seed=1, smoke=True, betas=(0.5, 0.9))

    def test_container_overrides_identical_across_paths(self):
        # params() normalizes once, so the direct path (run_full) and
        # the pool path (bound) see byte-identical parameters even for
        # a set-valued override.
        spec = registry.get("ablation-beta")
        betas = {0.9, 0.5, 0.98, 0.8}
        direct = spec.run(seed=1, smoke=True, betas=betas)
        pooled = spec.bound(smoke=True, betas=betas)(1)
        assert direct == pooled
        assert spec.params(smoke=True, betas=betas)["betas"] == (
            0.5, 0.8, 0.9, 0.98,
        )

    def test_every_registered_spec_builds_an_arena(self):
        registry.clear_arenas()
        for spec in registry.specs():
            arena = spec.build_once(smoke=True)
            assert isinstance(arena, dict)
        registry.clear_arenas()
