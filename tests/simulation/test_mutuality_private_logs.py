"""Tests for the private-log variant of the mutuality simulation."""

import pytest

from repro.simulation.config import MutualityConfig
from repro.simulation.mutuality import MutualitySimulation, sweep_thresholds
from repro.socialnet.datasets import twitter


@pytest.fixture(scope="module")
def graph():
    return twitter(seed=0)


class TestPrivateLogs:
    def test_runs_and_produces_rates(self, graph):
        config = MutualityConfig(threshold=0.3, shared_logs=False)
        result = MutualitySimulation(graph, config, seed=3).run()
        for value in (result.rates.success_rate,
                      result.rates.unavailable_rate,
                      result.rates.abuse_rate):
            assert 0.0 <= value <= 1.0

    def test_private_logs_allow_whitewashing(self, graph):
        # The motivation for the shared-log default: with private logs
        # and many candidate trustees, an abuser simply moves on to
        # trustees that have never observed it, so even a strict
        # threshold barely cuts abuse (and barely costs availability).
        config = MutualityConfig(shared_logs=False)
        sweep = sweep_thresholds(graph, thresholds=(0.0, 0.6), seed=3,
                                 config=config)
        assert sweep[1].rates.abuse_rate > sweep[0].rates.abuse_rate - 0.1
        assert sweep[1].rates.unavailable_rate < 0.1

    def test_private_logs_weaker_than_shared(self, graph):
        # Privately-held statistics are sparser, so at the same threshold
        # less abuse is filtered than with gossip: abuse(private) >=
        # abuse(shared) at a strict threshold.
        shared = sweep_thresholds(
            graph, thresholds=(0.6,), seed=3,
            config=MutualityConfig(shared_logs=True),
        )[0]
        private = sweep_thresholds(
            graph, thresholds=(0.6,), seed=3,
            config=MutualityConfig(shared_logs=False),
        )[0]
        assert private.rates.abuse_rate >= shared.rates.abuse_rate - 0.02

    def test_deterministic(self, graph):
        config = MutualityConfig(threshold=0.3, shared_logs=False)
        a = MutualitySimulation(graph, config, seed=5).run()
        b = MutualitySimulation(graph, config, seed=5).run()
        assert a.rates == b.rates

    def test_sweep_propagates_flag(self, graph):
        config = MutualityConfig(shared_logs=False)
        results = sweep_thresholds(graph, thresholds=(0.0, 0.3), seed=3,
                                   config=config)
        assert len(results) == 2
