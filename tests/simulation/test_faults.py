"""Unit tests for the fault-injection and failure-record helpers."""

import pytest

from repro.simulation.faults import (
    BACKOFF_CAP_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    FaultSpec,
    InjectedFaultError,
    backoff_delay,
    crash_failure_payload,
    failure_payload,
    faults_for,
    maybe_raise,
    normalize_failure,
    parse_fault_specs,
    traceback_digest,
)


class TestParseFaultSpecs:
    def test_empty_and_none_parse_to_nothing(self):
        assert parse_fault_specs("") == ()
        assert parse_fault_specs(None) == ()

    def test_single_specs(self):
        assert parse_fault_specs("sigkill:3") == (
            FaultSpec(kind="sigkill", seed=3),
        )
        assert parse_fault_specs("raise:7") == (
            FaultSpec(kind="raise", seed=7),
        )
        assert parse_fault_specs("hang:2") == (
            FaultSpec(kind="hang", seed=2),
        )

    def test_flaky_carries_its_failure_count(self):
        (spec,) = parse_fault_specs("flaky:5:2")
        assert spec == FaultSpec(kind="flaky", seed=5, fails=2)

    def test_comma_separated_mix(self):
        specs = parse_fault_specs("raise:3,flaky:5:2,hang:7")
        assert [s.kind for s in specs] == ["raise", "flaky", "hang"]
        assert [s.seed for s in specs] == [3, 5, 7]

    def test_malformed_entries_are_ignored(self):
        # Unknown kinds, missing fields, non-integer seeds, flaky
        # without a count, zero-count flaky: all silently dropped so a
        # typo'd env var can't crash a worker fleet.
        assert parse_fault_specs("explode:1") == ()
        assert parse_fault_specs("sigkill") == ()
        assert parse_fault_specs("sigkill:one") == ()
        assert parse_fault_specs("flaky:5") == ()
        assert parse_fault_specs("flaky:5:0") == ()
        assert parse_fault_specs("raise:1:2") == ()
        assert parse_fault_specs("raise:2,bogus,flaky:3:1") == (
            FaultSpec(kind="raise", seed=2),
            FaultSpec(kind="flaky", seed=3, fails=1),
        )

    def test_faults_for_filters_by_seed_and_kind(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_FAULT", "raise:3,flaky:3:1")
        assert [s.kind for s in faults_for(3)] == ["raise", "flaky"]
        assert [s.kind for s in faults_for(3, kind="flaky")] == ["flaky"]
        assert faults_for(4) == ()


class TestMaybeRaise:
    def test_poison_seed_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_FAULT", "raise:9")
        with pytest.raises(InjectedFaultError, match="seed 9 is poison"):
            maybe_raise(9)
        maybe_raise(8)  # healthy seeds untouched

    def test_no_env_is_a_no_op(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKER_FAULT", raising=False)
        maybe_raise(1)


class TestBackoff:
    def test_exponential_until_the_cap(self):
        delays = [backoff_delay(attempt) for attempt in range(1, 8)]
        assert delays[:3] == [0.05, 0.1, 0.2]
        assert all(b >= a for a, b in zip(delays, delays[1:]))
        assert max(delays) == BACKOFF_CAP_SECONDS


class TestFailureRecords:
    def _error(self):
        try:
            raise ValueError("boom goes the seed")
        except ValueError as error:
            return error

    def test_payload_shape(self):
        record = failure_payload(4, self._error(), attempts=3)
        assert record["seed"] == 4
        assert record["error_type"] == "ValueError"
        assert record["message"] == "boom goes the seed"
        assert record["attempts"] == 3
        assert len(record["traceback_digest"]) == 16
        int(record["traceback_digest"], 16)  # hex, not prose

    def test_digest_is_stable_per_raise_site(self):
        first = traceback_digest(self._error())
        second = traceback_digest(self._error())
        assert first == second

    def test_crash_payload_names_the_worker_death(self):
        record = crash_failure_payload(2, attempts=DEFAULT_MAX_ATTEMPTS)
        assert record["seed"] == 2
        assert record["error_type"] == "WorkerCrash"
        assert record["attempts"] == DEFAULT_MAX_ATTEMPTS

    def test_normalize_round_trips_a_real_payload(self):
        record = failure_payload(4, self._error(), attempts=1)
        assert normalize_failure(dict(record)) == record

    def test_normalize_rejects_garbage(self):
        assert normalize_failure(None) is None
        assert normalize_failure("not a dict") is None
        assert normalize_failure({}) is None
        assert normalize_failure({"seed": "four"}) is None

    def test_normalize_backfills_the_seed_hint(self):
        record = failure_payload(4, self._error(), attempts=1)
        del record["seed"]
        fixed = normalize_failure(record, 4)
        assert fixed is not None and fixed["seed"] == 4
