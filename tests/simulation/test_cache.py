"""Tests for the persistent cross-process sweep result cache."""

import json
from pathlib import Path

import pytest

from repro.simulation.cache import (
    CacheStats,
    SweepCache,
    code_version,
    default_cache_dir,
)
from repro.simulation.results import RateSummary, SeriesResult
from repro.simulation.sweep import run_sweep, seed_range

PARAMS = (("network", "twitter"), ("threshold", 0.3))


def _cache_files(root: Path):
    return sorted(root.rglob("*.json"))


class TestKey:
    def test_key_is_stable(self):
        assert SweepCache.key("fig7", PARAMS, 1) == SweepCache.key(
            "fig7", PARAMS, 1
        )

    def test_key_varies_with_every_component(self):
        base = SweepCache.key("fig7", PARAMS, 1, version="v1")
        assert SweepCache.key("fig9", PARAMS, 1, version="v1") != base
        assert SweepCache.key(
            "fig7", (("network", "gplus"),), 1, version="v1"
        ) != base
        assert SweepCache.key("fig7", PARAMS, 2, version="v1") != base
        assert SweepCache.key("fig7", PARAMS, 1, version="v2") != base

    def test_default_version_is_code_version(self):
        assert SweepCache.key("fig7", PARAMS, 1) == SweepCache.key(
            "fig7", PARAMS, 1, version=code_version()
        )

    def test_code_version_is_short_hex_and_cached(self):
        version = code_version()
        assert len(version) == 16
        int(version, 16)  # hex
        assert code_version() == version


class TestRoundTrip:
    def test_rates_round_trip(self, tmp_path):
        cache = SweepCache(tmp_path)
        result = RateSummary(0.5, 0.25, 0.125, total_requests=7)
        cache.put("a" * 64, result, scenario="s", seed=1)
        assert cache.get("a" * 64) == result

    def test_series_round_trip_bit_identical(self, tmp_path):
        cache = SweepCache(tmp_path)
        values = [0.1 + 0.2, 1.0 / 3.0, 1e-17, 123456.789]
        result = SeriesResult("curve", values)
        cache.put("b" * 64, result)
        replayed = cache.get("b" * 64)
        assert replayed == result
        assert replayed.values == values  # exact float equality

    def test_miss_returns_none_and_counts(self, tmp_path):
        cache = SweepCache(tmp_path)
        assert cache.get("c" * 64) is None
        assert cache.stats == CacheStats(hits=0, misses=1)

    def test_hit_miss_accounting(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.put("d" * 64, SeriesResult("s", [1.0]))
        cache.get("d" * 64)
        cache.get("e" * 64)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.lookups == 2

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.put("f" * 64, SeriesResult("s", [1.0]))
        (path,) = _cache_files(tmp_path)
        path.write_text("{ not json")
        assert cache.get("f" * 64) is None
        assert cache.stats.misses == 1

    def test_wrong_shape_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.put("0" * 64, SeriesResult("s", [1.0]))
        (path,) = _cache_files(tmp_path)
        path.write_text(json.dumps({"result": {"kind": "histogram"}}))
        assert cache.get("0" * 64) is None


class TestDefaultDir:
    def test_env_override_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_tilde_expands_everywhere(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "~/env-cache")
        assert default_cache_dir() == Path.home() / "env-cache"
        assert SweepCache("~/lib-cache").root == Path.home() / "lib-cache"

    def test_xdg_fallback(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro" / "sweeps"


class TestRunSweepWithCache:
    SCENARIO = "fig15-environment"

    def test_cold_run_is_all_misses(self, tmp_path):
        sweep = run_sweep(self.SCENARIO, seed_range(3), smoke=True,
                          cache_dir=tmp_path)
        assert sweep.cache_enabled
        assert sweep.cache_hits == 0
        assert sweep.cache_misses == 3
        assert len(_cache_files(tmp_path)) == 3

    def test_warm_rerun_is_all_hits_and_bit_identical(self, tmp_path):
        cold = run_sweep(self.SCENARIO, seed_range(3), smoke=True,
                         cache_dir=tmp_path)
        warm = run_sweep(self.SCENARIO, seed_range(3), smoke=True,
                         cache_dir=tmp_path)
        assert warm.cache_hits == 3
        assert warm.cache_misses == 0
        assert warm.per_seed == cold.per_seed
        assert warm.mean == cold.mean
        assert warm.variance == cold.variance
        assert warm.timing.backend == "cache"

    def test_incremental_seed_growth_reuses_prior_seeds(self, tmp_path):
        small = run_sweep(self.SCENARIO, seed_range(4), smoke=True,
                          cache_dir=tmp_path)
        grown = run_sweep(self.SCENARIO, seed_range(8), smoke=True,
                          cache_dir=tmp_path)
        assert grown.cache_hits == 4
        assert grown.cache_misses == 4
        # Timing describes the whole invocation, not just the 4
        # recomputed seeds.
        assert grown.timing.seeds == 8
        # The first four per-seed results are replays of the small sweep.
        assert grown.per_seed[:4] == small.per_seed
        # And identical to computing the eight seeds from scratch.
        fresh = run_sweep(self.SCENARIO, seed_range(8), smoke=True)
        assert grown.per_seed == fresh.per_seed
        assert grown.mean == fresh.mean

    def test_different_params_do_not_collide(self, tmp_path):
        run_sweep("fig7-mutuality", seed_range(2), smoke=True,
                  cache_dir=tmp_path)
        other = run_sweep("fig7-mutuality", seed_range(2), smoke=True,
                          overrides={"threshold": 0.6},
                          cache_dir=tmp_path)
        assert other.cache_hits == 0
        assert other.cache_misses == 2

    def test_no_cache_dir_bypasses_reads_and_writes(self, tmp_path):
        sweep = run_sweep(self.SCENARIO, seed_range(2), smoke=True,
                          cache_dir=None)
        assert not sweep.cache_enabled
        assert sweep.cache_hits == 0
        assert sweep.cache_misses == 0
        assert _cache_files(tmp_path) == []

    def test_corrupt_cache_file_recomputes(self, tmp_path):
        clean = run_sweep(self.SCENARIO, seed_range(3), smoke=True,
                          cache_dir=tmp_path)
        victim = _cache_files(tmp_path)[1]
        victim.write_text("truncated garbage")
        recovered = run_sweep(self.SCENARIO, seed_range(3), smoke=True,
                              cache_dir=tmp_path)
        assert recovered.cache_hits == 2
        assert recovered.cache_misses == 1
        assert recovered.per_seed == clean.per_seed
        assert recovered.mean == clean.mean
        # The corrupt entry was rewritten; a third run is all hits.
        third = run_sweep(self.SCENARIO, seed_range(3), smoke=True,
                          cache_dir=tmp_path)
        assert third.cache_hits == 3

    def test_cache_shared_across_worker_counts(self, tmp_path):
        sequential = run_sweep(self.SCENARIO, seed_range(4), smoke=True,
                               cache_dir=tmp_path)
        parallel = run_sweep(self.SCENARIO, seed_range(4), workers=2,
                             backend="thread", smoke=True,
                             cache_dir=tmp_path)
        assert parallel.cache_hits == 4
        assert parallel.per_seed == sequential.per_seed

    def test_empty_seed_list_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="seed"):
            run_sweep(self.SCENARIO, [], smoke=True, cache_dir=tmp_path)

    def test_runner_args_validated_even_on_warm_cache(self, tmp_path):
        run_sweep(self.SCENARIO, seed_range(2), smoke=True,
                  cache_dir=tmp_path)
        # An all-hits replay must reject bad arguments exactly like a
        # cold run would.
        with pytest.raises(ValueError, match="chunk_size"):
            run_sweep(self.SCENARIO, seed_range(2), smoke=True,
                      cache_dir=tmp_path, chunk_size=0)
        with pytest.raises(ValueError, match="workers"):
            run_sweep(self.SCENARIO, seed_range(2), smoke=True,
                      cache_dir=tmp_path, workers=-5)
        with pytest.raises(ValueError, match="backend"):
            run_sweep(self.SCENARIO, seed_range(2), smoke=True,
                      cache_dir=tmp_path, backend="bogus")

    def test_unwritable_cache_warns_but_returns_results(
        self, tmp_path, monkeypatch
    ):
        def refuse(self, key, result, scenario="", seed=None,
                   runtime=None):
            raise OSError("disk full")

        monkeypatch.setattr(SweepCache, "put", refuse)
        with pytest.warns(RuntimeWarning, match="cache write.*failed"):
            sweep = run_sweep(self.SCENARIO, seed_range(3), smoke=True,
                              cache_dir=tmp_path)
        # The computed results survive the failed persist...
        clean = run_sweep(self.SCENARIO, seed_range(3), smoke=True)
        assert sweep.per_seed == clean.per_seed
        assert sweep.mean == clean.mean
        # ...and nothing was written.
        monkeypatch.undo()
        assert _cache_files(tmp_path) == []


class TestCacheErrorsSurfaced:
    """Regression: an unwritable cache used to warn and then silently
    report the affected seeds as plain misses; the error count now
    rides through ``SweepResult`` and the JSON export."""

    SCENARIO = "fig15-environment"

    def test_unwritable_cache_dir_counts_every_failed_persist(
        self, tmp_path
    ):
        # A path whose parent is a regular file: every mkdir/put fails
        # with OSError regardless of the uid running the suite (a
        # chmod-based read-only dir would not stop root).
        blocker = tmp_path / "blocker"
        blocker.write_text("i am a file, not a directory")
        bad_dir = blocker / "cache"
        with pytest.warns(RuntimeWarning, match="cache write.*failed"):
            sweep = run_sweep(self.SCENARIO, seed_range(3), smoke=True,
                              cache_dir=bad_dir)
        assert sweep.cache_errors == 3
        assert sweep.cache_misses == 3
        assert sweep.cache_hits == 0
        # The results themselves are unharmed.
        clean = run_sweep(self.SCENARIO, seed_range(3), smoke=True)
        assert sweep.per_seed == clean.per_seed

    def test_error_count_reaches_the_json_export(self, tmp_path):
        from repro.analysis.export import load_sweep, sweep_to_json

        blocker = tmp_path / "blocker"
        blocker.write_text("still a file")
        with pytest.warns(RuntimeWarning):
            sweep = run_sweep(self.SCENARIO, seed_range(2), smoke=True,
                              cache_dir=blocker / "cache")
        payload = load_sweep(sweep_to_json(sweep))
        assert payload["cache"] == {
            "enabled": True, "hits": 0, "misses": 2, "errors": 2,
        }

    def test_distributed_worker_put_errors_surface_too(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("file again")
        with pytest.warns(RuntimeWarning, match="cache write"):
            sweep = run_sweep(
                self.SCENARIO, seed_range(3), smoke=True,
                backend="distributed", workers=0,
                queue_dir=tmp_path / "q", cache_dir=blocker / "cache",
            )
        # The done markers carried the results despite the dead cache.
        assert sweep.cache_errors == 3
        clean = run_sweep(self.SCENARIO, seed_range(3), smoke=True)
        assert sweep.per_seed == clean.per_seed

    def test_healthy_cache_reports_zero_errors(self, tmp_path):
        sweep = run_sweep(self.SCENARIO, seed_range(2), smoke=True,
                          cache_dir=tmp_path)
        assert sweep.cache_errors == 0


class TestUsageAndPrune:
    """`repro cache` backing: the census and the prune pass."""

    def _seed_entries(self, root, count, version=None):
        cache = SweepCache(root)
        for index in range(count):
            key = SweepCache.key("census", PARAMS, index, version="fixed")
            cache.put(key, RateSummary(0.1, 0.2, 0.3, total_requests=1),
                      scenario="census", seed=index, version=version)

    def test_usage_counts_entries_and_versions(self, tmp_path):
        from repro.simulation.cache import cache_usage

        self._seed_entries(tmp_path, 3)
        self._seed_entries(tmp_path / "old", 2, version="feedface")
        usage = cache_usage(tmp_path)
        assert usage.entries == 3
        assert usage.total_bytes > 0
        assert usage.versions == {code_version(): 3}
        assert usage.stale_entries == 0
        old = cache_usage(tmp_path / "old")
        assert old.versions == {"feedface": 2}
        assert old.stale_entries == 2

    def test_usage_of_missing_dir_is_empty(self, tmp_path):
        from repro.simulation.cache import cache_usage

        usage = cache_usage(tmp_path / "never-created")
        assert usage.entries == 0
        assert usage.versions == {}

    def test_prune_removes_only_stale_versions(self, tmp_path):
        from repro.simulation.cache import cache_usage, prune_stale

        cache = SweepCache(tmp_path)
        current_key = SweepCache.key("keep", PARAMS, 1)
        cache.put(current_key, RateSummary(0.5, 0.25, 0.25),
                  scenario="keep", seed=1)
        stale_key = SweepCache.key("drop", PARAMS, 1, version="old")
        cache.put(stale_key, RateSummary(0.5, 0.25, 0.25),
                  scenario="drop", seed=1, version="0123456789abcdef")

        report = prune_stale(tmp_path)
        assert report.examined == 2
        assert report.removed == 1
        assert report.kept == 1
        assert report.freed_bytes > 0
        assert cache.get(current_key) is not None
        assert cache_usage(tmp_path).entries == 1

    def test_prune_dry_run_deletes_nothing(self, tmp_path):
        from repro.simulation.cache import cache_usage, prune_stale

        self._seed_entries(tmp_path, 2, version="0ldc0de0ldc0de00")
        report = prune_stale(tmp_path, dry_run=True)
        assert report.dry_run
        assert report.removed == 2
        assert cache_usage(tmp_path).entries == 2

    def test_prune_drops_versionless_and_corrupt_entries(self, tmp_path):
        import os
        import time

        from repro.simulation.cache import prune_stale

        fanout = tmp_path / "ab"
        fanout.mkdir(parents=True)
        (fanout / ("a" * 64 + ".json")).write_text(
            json.dumps({"result": {"kind": "rates"}})  # pre-PR4: no version
        )
        (fanout / ("b" * 64 + ".json")).write_text("{corrupt")
        orphan = fanout / "leftover.tmp"
        orphan.write_text("crashed writer")
        past = time.time() - 7200  # old enough to be a crashed writer's
        os.utime(orphan, (past, past))
        report = prune_stale(tmp_path)
        assert report.removed == 3
        assert list(tmp_path.rglob("*")) == []  # fanout dir swept too

    def test_prune_spares_a_live_writers_tmp_file(self, tmp_path):
        from repro.simulation.cache import prune_stale

        fanout = tmp_path / "cd"
        fanout.mkdir(parents=True)
        in_flight = fanout / "being-written.tmp"
        in_flight.write_text("a concurrent put() owns this")
        report = prune_stale(tmp_path)
        assert report.removed == 0
        assert in_flight.exists()

    def test_prune_keeps_entries_written_by_run_sweep(self, tmp_path):
        from repro.simulation.cache import prune_stale

        run_sweep("fig15-environment", seed_range(2), smoke=True,
                  cache_dir=tmp_path)
        report = prune_stale(tmp_path)
        assert report.removed == 0 and report.kept == 2
        warm = run_sweep("fig15-environment", seed_range(2), smoke=True,
                         cache_dir=tmp_path)
        assert warm.cache_hits == 2
