"""Tests for the Fig. 15 dynamic-environment simulation."""

import pytest

from repro.simulation.config import EnvironmentConfig
from repro.simulation.environment import EnvironmentSimulation


@pytest.fixture(scope="module")
def result():
    return EnvironmentSimulation(EnvironmentConfig(runs=60), seed=7).run()


@pytest.fixture(scope="module")
def simulation():
    return EnvironmentSimulation(EnvironmentConfig(runs=60), seed=7)


class TestCurves:
    def test_lengths_match_schedule(self, result):
        for series in result.curves().values():
            assert len(series.values) == 300

    def test_control_converges_to_actual(self, result):
        tail = result.no_influence.values[80:100]
        assert sum(tail) / len(tail) == pytest.approx(0.8, abs=0.05)

    def test_traditional_follows_degraded_rate(self, result):
        # During the hostile phase the raw tracker approaches 0.8*0.4.
        tail = result.traditional.values[180:200]
        assert sum(tail) / len(tail) == pytest.approx(0.32, abs=0.06)

    def test_proposed_recovers_intrinsic_competence(self, result):
        # The de-biased tracker stays near the actual 0.8 in all phases.
        for window in ((80, 100), (170, 200), (280, 300)):
            tail = result.proposed.values[window[0]:window[1]]
            assert sum(tail) / len(tail) == pytest.approx(0.8, abs=0.12)

    def test_effective_rate_reflects_schedule(self, result):
        values = result.effective_rate.values
        assert values[50] == pytest.approx(0.8)
        assert values[150] == pytest.approx(0.32)
        assert values[250] == pytest.approx(0.56)

    def test_traditional_shows_delay_after_step(self, result):
        # Just after the environment drops, the traditional tracker is
        # still far from its new level — the "delay" the paper annotates.
        value_at_step = result.traditional.values[102]
        assert value_at_step > 0.5


class TestErrors:
    def test_proposed_tracks_better_than_traditional(self, simulation, result):
        errors = simulation.tracking_errors(result)
        assert errors["proposed"] < 0.5 * errors["traditional"]

    def test_control_error_small(self, simulation, result):
        errors = simulation.tracking_errors(result)
        assert errors["no_influence"] < 0.05


class TestMechanics:
    def test_deterministic(self):
        config = EnvironmentConfig(runs=5)
        a = EnvironmentSimulation(config, seed=2).run()
        b = EnvironmentSimulation(config, seed=2).run()
        assert a.proposed.values == b.proposed.values

    def test_custom_schedule(self):
        config = EnvironmentConfig(
            runs=3, schedule=((10, 1.0), (10, 0.5))
        )
        result = EnvironmentSimulation(config, seed=1).run()
        assert len(result.proposed.values) == 20
