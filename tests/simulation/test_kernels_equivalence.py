"""Python-vs-vectorized kernel equivalence: bit-identity, not closeness.

The ``*-vectorized`` registry variants already ride the generic
sequential-vs-parallel equivalence suite (every execution mode must
reproduce their sequential bits); this suite closes the remaining gap by
comparing the vectorized scenarios *against their python-backend base
scenario* — the cross-backend direction no generic harness covers — and
by pinning the profile/CLI plumbing that routes ``--compute`` overrides.
"""

import pytest

from repro.api import ExecutionProfile, SweepSpec
from repro.core.kernels import HAVE_NUMPY
from repro.simulation import registry
from repro.simulation.sweep import _effective_spec, execute_sweep

SEEDS = [11, 12, 13]
VECTORIZED = [
    name for name in registry.names() if name.endswith("-vectorized")
]
BASES = [name[: -len("-vectorized")] for name in VECTORIZED]


class TestRegistryVariants:
    def test_all_vectorized_variants_registered(self):
        assert VECTORIZED == [
            "ablation-beta-vectorized",
            "ablation-combiner-vectorized",
            "fig15-environment-vectorized",
            "fig7-mutuality-vectorized",
        ]

    @pytest.mark.parametrize("name", VECTORIZED)
    def test_variant_mirrors_base(self, name):
        base = registry.get(name[: -len("-vectorized")])
        variant = registry.get(name)
        assert variant.supports_compute
        assert variant.kind == base.kind
        assert dict(variant.defaults) == {
            **dict(base.defaults), "compute": "vectorized",
        }

    @pytest.mark.parametrize("base", BASES)
    def test_reduced_results_bit_identical(self, base):
        python_spec = registry.get(base)
        vector_spec = registry.get(base + "-vectorized")
        for seed in SEEDS:
            assert vector_spec.run(seed, smoke=True) == python_spec.run(
                seed, smoke=True
            )

    @pytest.mark.parametrize("base", BASES)
    def test_full_results_bit_identical(self, base):
        """The native result objects — every curve/field, not just the
        reduced shape — must match."""
        python_spec = registry.get(base)
        vector_spec = registry.get(base + "-vectorized")
        seed = SEEDS[0]
        assert vector_spec.run_full(seed, smoke=True) == python_spec.run_full(
            seed, smoke=True
        )

    @pytest.mark.parametrize("base", BASES)
    def test_compute_override_on_base_scenario(self, base):
        """compute="vectorized" as a plain parameter override on the
        base scenario is the same switch the variant bakes in."""
        spec = registry.get(base)
        seed = SEEDS[0]
        assert spec.run(
            seed, smoke=True, compute="vectorized"
        ) == spec.run(seed, smoke=True)


class TestProfileRouting:
    def test_profile_injects_compute_override(self):
        spec = SweepSpec("fig15-environment", [1, 2], smoke=True)
        profile = ExecutionProfile(compute="vectorized")
        effective = _effective_spec(spec, profile)
        assert dict(effective.overrides)["compute"] == "vectorized"

    def test_explicit_spec_override_wins(self):
        spec = SweepSpec(
            "fig15-environment", [1], smoke=True,
            overrides={"compute": "python"},
        )
        profile = ExecutionProfile(compute="vectorized")
        assert _effective_spec(spec, profile) is spec

    def test_unsupported_scenario_left_untouched(self):
        spec = SweepSpec("fig9-transitivity", [1], smoke=True)
        profile = ExecutionProfile(compute="vectorized")
        assert _effective_spec(spec, profile) is spec

    def test_none_compute_is_identity(self):
        spec = SweepSpec("fig15-environment", [1], smoke=True)
        assert _effective_spec(spec, ExecutionProfile()) is spec

    def test_profile_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="compute"):
            ExecutionProfile(compute="cuda")

    def test_profile_payload_round_trip(self):
        profile = ExecutionProfile(compute="vectorized")
        assert ExecutionProfile.from_payload(
            profile.to_payload()
        ) == profile

    def test_sweep_results_identical_across_compute_profiles(self):
        spec = SweepSpec("fig15-environment", SEEDS, smoke=True)
        python_result = execute_sweep(
            spec, ExecutionProfile(no_cache=True, compute="python")
        )
        vector_result = execute_sweep(
            spec, ExecutionProfile(no_cache=True, compute="vectorized")
        )
        assert vector_result.per_seed == python_result.per_seed
        assert vector_result.mean == python_result.mean
        assert vector_result.variance == python_result.variance


class TestSimulationBackends:
    def test_environment_simulation_backends_agree(self):
        from repro.simulation.config import EnvironmentConfig
        from repro.simulation.environment import EnvironmentSimulation

        config = EnvironmentConfig(runs=3)
        for seed in SEEDS:
            python_run = EnvironmentSimulation(config, seed=seed).run()
            vector_run = EnvironmentSimulation(
                config, seed=seed, compute="vectorized"
            ).run()
            assert vector_run == python_run

    def test_mutuality_simulation_backends_agree(self):
        from repro.simulation.config import MutualityConfig
        from repro.socialnet.datasets import load_network

        from repro.simulation.mutuality import MutualitySimulation

        graph = load_network("twitter", seed=0)
        config = MutualityConfig(
            threshold=0.3, warmup_interactions=8, requests_per_trustor=3
        )
        for seed in SEEDS:
            python_run = MutualitySimulation(graph, config, seed=seed).run()
            vector_run = MutualitySimulation(
                graph, config, seed=seed, compute="vectorized"
            ).run()
            assert vector_run == python_run

    def test_mutuality_zero_warmup_edge(self):
        """W=0 draws nothing in either backend; stats stay empty and
        fraction() falls back to benefit-of-the-doubt 1.0 both ways."""
        from repro.simulation.config import MutualityConfig
        from repro.socialnet.datasets import load_network

        from repro.simulation.mutuality import MutualitySimulation

        graph = load_network("twitter", seed=0)
        config = MutualityConfig(
            threshold=0.3, warmup_interactions=0, requests_per_trustor=2
        )
        assert MutualitySimulation(
            graph, config, seed=5, compute="vectorized"
        ).run() == MutualitySimulation(graph, config, seed=5).run()

    def test_private_logs_fall_back_to_python_warmup(self):
        """The vectorized warm-up only covers shared logs; private logs
        interleave choice() draws and must take the oracle path."""
        from repro.simulation.config import MutualityConfig
        from repro.socialnet.datasets import load_network

        from repro.simulation.mutuality import MutualitySimulation

        graph = load_network("twitter", seed=0)
        config = MutualityConfig(
            threshold=0.3, warmup_interactions=5,
            requests_per_trustor=2, shared_logs=False,
        )
        assert MutualitySimulation(
            graph, config, seed=7, compute="vectorized"
        ).run() == MutualitySimulation(graph, config, seed=7).run()

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy")
    def test_resolve_compute_rejects_unknown(self):
        from repro.core.kernels import resolve_compute

        with pytest.raises(ValueError):
            resolve_compute("gpu")
        assert resolve_compute("python") == "python"
        assert resolve_compute("vectorized") == "vectorized"
