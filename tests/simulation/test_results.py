"""Tests for result containers."""

import pytest

from repro.simulation.results import RateSummary, SeriesResult, mean


class TestRateSummary:
    def test_as_row_rounds(self):
        summary = RateSummary(
            success_rate=0.123456, unavailable_rate=0.2, abuse_rate=0.3
        )
        row = summary.as_row()
        assert row["success"] == 0.1235
        assert row["unavailable"] == 0.2


class TestSeriesResult:
    def test_append_coerces_float(self):
        series = SeriesResult("s")
        series.append(1)
        assert series.values == [1.0]

    def test_smoothed_window_one_is_identity(self):
        series = SeriesResult("s", [1.0, 2.0, 3.0])
        assert series.smoothed(1) == [1.0, 2.0, 3.0]

    def test_smoothed_trailing_average(self):
        series = SeriesResult("s", [0.0, 2.0, 4.0, 6.0])
        smoothed = series.smoothed(2)
        # Warm-up uses the available prefix.
        assert smoothed[0] == 0.0
        assert smoothed[1] == 1.0
        assert smoothed[2] == pytest.approx(3.0)

    def test_smoothed_invalid_window(self):
        with pytest.raises(ValueError):
            SeriesResult("s", [1.0]).smoothed(0)

    def test_tail_mean(self):
        series = SeriesResult("s", [0.0, 0.0, 4.0, 6.0])
        assert series.tail_mean(2) == 5.0

    def test_tail_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            SeriesResult("s").tail_mean(3)


class TestMean:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_mean_is_zero(self):
        assert mean([]) == 0.0
