"""Fault injection for distributed sweeps: crashes must cost nothing.

Injected failures — a worker SIGKILLed mid-chunk, a corrupt task file,
a lease whose heartbeat is back-dated past the TTL, a poison seed that
raises on every attempt, a flaky seed that fails ``k`` attempts before
succeeding, and a worker that hangs past its lease TTL — and one
invariant: the sweep terminates with every healthy seed bit-identical
to the sequential oracle, every recovery event visible in the
steal/requeue counters, and every exhausted seed quarantined with a
structured diagnostic instead of crashing the fleet.

The tests use the harness built into the worker itself:
``REPRO_WORKER_FAULT=sigkill:<seed>`` makes exactly one worker *daemon*
kill itself (``SIGKILL``: no cleanup, no lease release) right before
running that seed; ``raise:<seed>`` makes every attempt at the seed
raise; ``flaky:<seed>:<k>`` fails the seed's first ``k`` attempts
sweep-wide; ``hang:<seed>`` makes one daemon sleep past its lease TTL.
"""

import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.simulation import registry
from repro.simulation.distributed import (
    WorkQueue,
    lease_steal_threshold,
    requeue_quarantined,
    worker_loop,
)
from repro.simulation.faults import DEFAULT_MAX_ATTEMPTS
from repro.simulation.sweep import run_sweep, seed_range

SCENARIO = "fig15-environment"
# Generous bound for one killed-and-stolen smoke chunk on a loaded CI box.
WAIT = 120.0


def _oracle(seeds):
    spec = registry.get(SCENARIO)
    return {seed: spec.run(seed, smoke=True) for seed in seeds}


def _make_queue(tmp_path, seeds, chunk_size):
    spec = registry.get(SCENARIO)
    return WorkQueue.create(
        tmp_path / "queue", SCENARIO, spec.params_key(smoke=True),
        seeds, chunk_size,
    )


def _daemon_worker(queue_dir, cache_dir, fault, lease_ttl=30.0):
    """Run one worker daemon in-process (forked child entry point)."""
    os.environ["REPRO_WORKER_FAULT"] = fault
    worker_loop(queue_dir, cache_dir, drain=True, poll=0.01,
                lease_ttl=lease_ttl, _daemon=True)


class TestSigkillMidChunk:
    def test_killed_worker_chunk_is_stolen_and_bit_identical(
        self, tmp_path
    ):
        """Worker dies inside a chunk; a peer steals and finishes it."""
        seeds = [1, 2, 3, 4, 5, 6]
        queue = _make_queue(tmp_path, seeds, chunk_size=3)
        cache_dir = str(tmp_path / "cache")

        # Worker A: dies right before seed 2 — after completing seed 1
        # of its first chunk, mid-chunk by construction.
        context = multiprocessing.get_context("fork")
        victim = context.Process(
            target=_daemon_worker,
            args=(str(tmp_path / "queue"), cache_dir, "sigkill:2"),
        )
        victim.start()
        victim.join(timeout=WAIT)
        assert victim.exitcode == -9  # died by SIGKILL, not exit()

        # The crash left an orphaned lease and an unfinished task.
        assert not queue.is_complete()
        leases = list((queue.sweep_dir / "leases").glob("*.lease"))
        assert len(leases) == 1

        # Worker B (a live peer) steals the expired lease and drains.
        # The lease is minutes-fresh, so expire it the honest way: wait
        # for a short TTL rather than touching the file.
        time.sleep(0.3)
        stats = worker_loop(
            tmp_path / "queue", cache_dir, drain=True, lease_ttl=0.25,
        )
        assert queue.is_complete()
        assert stats.steals == 1

        results, _, totals = queue.collect()
        assert results == _oracle(seeds)
        counters = queue.counters()
        assert counters.steals == 1
        assert counters.requeues == 1
        # Seed 1 was cached by the victim before it died; the stealer
        # replays it instead of recomputing.
        assert totals.cache_hits >= 1

    def test_end_to_end_run_sweep_with_killed_worker(self, tmp_path):
        """The acceptance criterion: >=2 workers, one SIGKILLed
        mid-chunk, and ``run_sweep`` still returns the oracle's bits
        with the steal visible in the counters."""
        seeds = seed_range(6)
        sequential = run_sweep(SCENARIO, seeds, workers=1, smoke=True)

        os.environ["REPRO_WORKER_FAULT"] = "sigkill:3"
        try:
            distributed = run_sweep(
                SCENARIO, seeds, workers=2, backend="distributed",
                smoke=True, queue_dir=tmp_path / "q",
                cache_dir=tmp_path / "c", lease_ttl=0.5, chunk_size=2,
            )
        finally:
            del os.environ["REPRO_WORKER_FAULT"]

        assert distributed.per_seed == sequential.per_seed
        assert distributed.mean == sequential.mean
        assert distributed.variance == sequential.variance
        assert distributed.steals == 1
        assert distributed.requeues == 1
        assert distributed.tasks_total == 3

    def test_fault_fires_exactly_once_across_workers(self, tmp_path):
        """Two daemons, one fault flag: exactly one dies, the other
        (plus the coordinator, if needed) completes the sweep."""
        seeds = seed_range(4)
        os.environ["REPRO_WORKER_FAULT"] = "sigkill:1"
        try:
            distributed = run_sweep(
                SCENARIO, seeds, workers=2, backend="distributed",
                smoke=True, queue_dir=tmp_path / "q",
                cache_dir=tmp_path / "c", lease_ttl=0.5, chunk_size=1,
            )
        finally:
            del os.environ["REPRO_WORKER_FAULT"]
        sequential = run_sweep(SCENARIO, seeds, workers=1, smoke=True)
        assert distributed.per_seed == sequential.per_seed
        assert distributed.steals == 1  # one death, one reclaim


class TestCorruptTaskFile:
    def test_worker_repairs_and_completes(self, tmp_path):
        seeds = [1, 2, 3, 4]
        queue = _make_queue(tmp_path, seeds, chunk_size=2)
        (queue.sweep_dir / "tasks" / "task-0001.json").write_text(
            "\x00 not a task \x00"
        )
        stats = worker_loop(tmp_path / "queue", None, drain=True)
        assert stats.repairs == 1
        assert queue.is_complete()
        results, _, _ = queue.collect()
        assert results == _oracle(seeds)
        counters = queue.counters()
        assert counters.repairs == 1
        assert counters.requeues == 1
        assert counters.steals == 0

    def test_end_to_end_requeue_count_in_sweep_result(self, tmp_path):
        """Corruption injected between enqueue and execution surfaces
        as a requeue in the SweepResult counters."""
        queue_dir = tmp_path / "q"
        seeds = seed_range(3)

        # Stage the sweep by hand so the corruption lands before any
        # worker runs, then let the coordinator-equivalent drain it.
        spec = registry.get(SCENARIO)
        queue = WorkQueue.create(
            queue_dir, SCENARIO, spec.params_key(smoke=True), seeds, 1
        )
        (queue.sweep_dir / "tasks" / "task-0000.json").write_text("junk")
        worker_loop(queue_dir, tmp_path / "c", drain=True)
        results, _, _ = queue.collect()
        assert results == _oracle(seeds)
        assert queue.counters().requeues == 1


class TestBackdatedLease:
    def test_expired_heartbeat_lease_is_reclaimed(self, tmp_path):
        """A lease whose heartbeat mtime is back-dated past the TTL is
        treated as a dead worker's and stolen."""
        seeds = [1, 2]
        queue = _make_queue(tmp_path, seeds, chunk_size=2)
        claim = queue.claim("task-0000", "wedged-worker")
        past = time.time() - 3600
        os.utime(claim.lease_path, (past, past))

        stats = worker_loop(
            tmp_path / "queue", None, drain=True, lease_ttl=5.0,
        )
        assert stats.steals == 1
        assert queue.is_complete()
        results, _, _ = queue.collect()
        assert results == _oracle(seeds)
        assert queue.counters().steals == 1
        # The wedged worker's heartbeat now fails: its lease is gone.
        assert not queue.heartbeat(claim)

    def test_live_lease_is_never_stolen(self, tmp_path):
        """The other half of the contract: a fresh heartbeat protects
        the chunk — the drain pass leaves it alone."""
        queue = _make_queue(tmp_path, [1, 2], chunk_size=1)
        queue.claim("task-0000", "busy-but-alive")
        stats = worker_loop(
            tmp_path / "queue", None, drain=True, lease_ttl=60.0,
        )
        # Only the unleased task was processed.
        assert stats.tasks_done == 1
        assert stats.steals == 0
        assert queue.pending() == ["task-0000"]

    def test_future_mtime_lease_is_never_stolen(self, tmp_path):
        """A lease mtime *ahead* of time.time() (filesystem/clock skew,
        or a clock step) must read as a fresh heartbeat, not as a
        negative — and under ``time.time() - mtime`` arithmetic, hugely
        expired — age."""
        queue = _make_queue(tmp_path, [1, 2], chunk_size=1)
        claim = queue.claim("task-0000", "worker-on-skewed-clock")
        future = time.time() + 300
        os.utime(claim.lease_path, (future, future))

        assert queue.claim("task-0000", "thief", lease_ttl=5.0) is None
        stats = worker_loop(
            tmp_path / "queue", None, drain=True, lease_ttl=5.0,
        )
        assert stats.steals == 0
        assert queue.pending() == ["task-0000"]
        assert queue.heartbeat(claim)

    def test_lease_inside_skew_margin_is_not_stolen(self, tmp_path):
        """An age past the TTL but inside the skew margin is still a
        live lease: sub-margin clock disagreement must never make a
        heartbeating worker look dead."""
        queue = _make_queue(tmp_path, [1, 2], chunk_size=1)
        claim = queue.claim("task-0000", "slightly-behind")
        ttl = 60.0
        margin = lease_steal_threshold(ttl) - ttl
        assert margin > 0
        past = time.time() - (ttl + margin * 0.5)
        os.utime(claim.lease_path, (past, past))

        assert queue.claim("task-0000", "thief", lease_ttl=ttl) is None

        # Strictly beyond TTL + margin the steal goes through.
        past = time.time() - (lease_steal_threshold(ttl) + 0.5)
        os.utime(claim.lease_path, (past, past))
        stolen = queue.claim("task-0000", "thief", lease_ttl=ttl)
        assert stolen is not None and stolen.stolen


class TestHeartbeatLeaseVanishes:
    def test_heartbeat_reports_lost_when_lease_vanishes(self, tmp_path):
        """The lease can be tombstoned away between the owner check and
        the ``utime`` — heartbeat must report the lease lost, never
        crash with FileNotFoundError."""
        queue = _make_queue(tmp_path, [1, 2], chunk_size=1)
        claim = queue.claim("task-0000", "victim")

        real_utime = os.utime

        def vanishing_utime(path, *args, **kwargs):
            # A thief renames the lease to a tombstone at the worst
            # possible instant.
            if Path(path) == claim.lease_path:
                claim.lease_path.rename(
                    claim.lease_path.with_name("task-0000.stale-test")
                )
                return real_utime(path, *args, **kwargs)  # must raise
            return real_utime(path, *args, **kwargs)

        utime_patch = pytest.MonkeyPatch()
        try:
            utime_patch.setattr(os, "utime", vanishing_utime)
            assert queue.heartbeat(claim) is False
        finally:
            utime_patch.undo()

    def test_heartbeat_detects_thief_after_refresh(self, tmp_path):
        """If a thief replaces the lease file between the owner read
        and the ``utime``, the post-refresh re-read must still report
        the claim lost — we refreshed *someone else's* lease."""
        queue = _make_queue(tmp_path, [1, 2], chunk_size=1)
        claim = queue.claim("task-0000", "victim")

        real_utime = os.utime

        def racing_utime(path, *args, **kwargs):
            if Path(path) == claim.lease_path:
                # Thief wins the tombstone rename and re-creates the
                # slot under its own name before our utime lands.
                claim.lease_path.write_text("thief")
            return real_utime(path, *args, **kwargs)

        utime_patch = pytest.MonkeyPatch()
        try:
            utime_patch.setattr(os, "utime", racing_utime)
            assert queue.heartbeat(claim) is False
        finally:
            utime_patch.undo()

    def test_worker_abandons_chunk_on_lost_lease_under_threads(
        self, tmp_path
    ):
        """Race a heartbeating owner against stealer threads deleting
        and reclaiming the lease: heartbeat may flip to False but must
        never raise, mirroring the 8-thread claim race above."""
        import threading

        queue = _make_queue(tmp_path, [1, 2], chunk_size=1)
        claim = queue.claim("task-0000", "owner")
        stop = threading.Event()
        errors = []

        def stealer():
            while not stop.is_set():
                try:
                    claim.lease_path.unlink()
                except OSError:
                    pass
                try:
                    queue.claim("task-0000", "stealer", lease_ttl=0.0)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

        threads = [threading.Thread(target=stealer) for _ in range(4)]
        for thread in threads:
            thread.start()
        lost = False
        try:
            for _ in range(200):
                if not queue.heartbeat(claim):
                    lost = True
        except Exception as exc:  # pragma: no cover
            errors.append(exc)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not errors
        # With the lease deleted under us repeatedly, at least one
        # heartbeat observed the loss and reported it.
        assert lost


class TestPoisonSeedQuarantine:
    def test_poison_seed_quarantined_rest_bit_identical(
        self, tmp_path, monkeypatch
    ):
        """A seed raising on every attempt costs its retry budget, then
        its quarantine slot — never the worker, never the sweep."""
        seeds = [1, 2, 3]
        queue = _make_queue(tmp_path, seeds, chunk_size=1)
        monkeypatch.setenv("REPRO_WORKER_FAULT", "raise:2")
        stats = worker_loop(tmp_path / "queue", tmp_path / "cache",
                            drain=True)
        assert queue.is_complete()  # the sweep drained anyway
        assert stats.quarantined == 1
        assert stats.seed_failures == 1

        results, failures, totals = queue.collect()
        oracle = _oracle(seeds)
        assert results == {s: oracle[s] for s in (1, 3)}
        assert set(failures) == {2}
        record = failures[2]
        assert record["error_type"] == "InjectedFaultError"
        assert "poison" in record["message"]
        assert record["attempts"] == DEFAULT_MAX_ATTEMPTS
        assert totals.quarantined == 1
        # Exactly max_attempts budget markers were spent on the seed.
        assert queue.attempt_count("task-0001", 2) == DEFAULT_MAX_ATTEMPTS
        # The diagnostic JSON names the owning task.
        assert queue.quarantined()[2]["task"] == "task-0001"
        assert queue.counters().quarantined == 1

    def test_manifest_pinned_budget_beats_worker_default(
        self, tmp_path, monkeypatch
    ):
        spec = registry.get(SCENARIO)
        queue = WorkQueue.create(
            tmp_path / "queue", SCENARIO, spec.params_key(smoke=True),
            [1, 2], 1, max_attempts=1,
        )
        monkeypatch.setenv("REPRO_WORKER_FAULT", "raise:1")
        worker_loop(tmp_path / "queue", None, drain=True, max_attempts=5)
        assert queue.attempt_count("task-0000", 1) == 1
        _, failures, _ = queue.collect()
        assert failures[1]["attempts"] == 1

    def test_end_to_end_poison_seed_acceptance(self, tmp_path,
                                               monkeypatch):
        """The acceptance criterion: one always-raising seed, and the
        distributed sweep terminates with no worker death (no steals),
        quarantines exactly that seed after ``max_attempts`` tries,
        reports it in ``failed_seeds``, and leaves every other seed
        bit-identical to the sequential oracle."""
        seeds = seed_range(5)
        healthy = [seed for seed in seeds if seed != 3]
        sequential = run_sweep(SCENARIO, healthy, workers=1, smoke=True)

        monkeypatch.setenv("REPRO_WORKER_FAULT", "raise:3")
        distributed = run_sweep(
            SCENARIO, seeds, workers=2, backend="distributed",
            smoke=True, queue_dir=tmp_path / "q",
            cache_dir=tmp_path / "c", chunk_size=2,
        )
        assert distributed.seeds == list(healthy)
        assert distributed.per_seed == sequential.per_seed
        assert distributed.mean == sequential.mean
        assert distributed.variance == sequential.variance
        assert [r["seed"] for r in distributed.failed_seeds] == [3]
        assert distributed.failed_seeds[0]["attempts"] == (
            DEFAULT_MAX_ATTEMPTS
        )
        # No worker died: the retry loop never let the lease go stale.
        assert distributed.steals == 0


class TestFlakySeed:
    def test_flaky_seed_retries_to_success(self, tmp_path, monkeypatch):
        """``flaky:<seed>:<k>`` with ``k`` under the budget exercises
        the full retry path and still converges on the oracle's bits."""
        seeds = [1, 2, 3]
        queue = _make_queue(tmp_path, seeds, chunk_size=3)
        monkeypatch.setenv("REPRO_WORKER_FAULT", "flaky:2:2")
        stats = worker_loop(tmp_path / "queue", None, drain=True)
        results, failures, _ = queue.collect()
        assert failures == {}
        assert results == _oracle(seeds)
        # Two failed attempts plus the succeeding third.
        assert queue.attempt_count("task-0000", 2) == 3
        assert queue.quarantined() == {}
        assert stats.quarantined == 0

    def test_flaky_beyond_budget_is_quarantined(self, tmp_path,
                                                monkeypatch):
        spec = registry.get(SCENARIO)
        queue = WorkQueue.create(
            tmp_path / "queue", SCENARIO, spec.params_key(smoke=True),
            [1, 2], 1, max_attempts=2,
        )
        monkeypatch.setenv("REPRO_WORKER_FAULT", "flaky:1:5")
        worker_loop(tmp_path / "queue", None, drain=True)
        results, failures, _ = queue.collect()
        assert set(failures) == {1}
        assert failures[1]["attempts"] == 2
        assert results == {2: _oracle([2])[2]}


class TestHangingWorker:
    def test_hung_chunk_is_stolen_and_sweep_matches_oracle(
        self, tmp_path
    ):
        """``hang:<seed>`` sleeps one daemon past its lease TTL: a peer
        steals the chunk and finishes it — steal-then-succeed, with the
        sleeper's late duplicate results harmlessly idempotent."""
        seeds = [1, 2, 3]
        queue = _make_queue(tmp_path, seeds, chunk_size=3)
        cache_dir = str(tmp_path / "cache")

        context = multiprocessing.get_context("fork")
        sleeper = context.Process(
            target=_daemon_worker,
            args=(str(tmp_path / "queue"), cache_dir, "hang:2", 0.5),
        )
        sleeper.start()
        try:
            # Give the sleeper time to claim, run seed 1, and fall
            # asleep before seed 2 (it sleeps well past its 0.5s TTL).
            time.sleep(0.6)
            stats = worker_loop(
                tmp_path / "queue", cache_dir, drain=True,
                lease_ttl=0.25,
            )
        finally:
            sleeper.join(timeout=WAIT)
        assert sleeper.exitcode == 0  # woke up and exited cleanly
        assert stats.steals == 1
        assert queue.is_complete()
        results, failures, _ = queue.collect()
        assert failures == {}
        assert results == _oracle(seeds)
        assert queue.counters().steals == 1


class TestRequeueQuarantined:
    def test_requeue_releases_for_a_clean_redrain(self, tmp_path,
                                                  monkeypatch):
        """After the poison is fixed (fault removed), ``requeue``
        restores the seed's budget and the sweep drains healthy."""
        seeds = [1, 2]
        queue = _make_queue(tmp_path, seeds, chunk_size=1)
        monkeypatch.setenv("REPRO_WORKER_FAULT", "raise:2")
        worker_loop(tmp_path / "queue", None, drain=True)
        assert set(queue.quarantined()) == {2}

        monkeypatch.delenv("REPRO_WORKER_FAULT")
        released = requeue_quarantined(tmp_path / "queue")
        assert released == {queue.sweep_id: [2]}
        assert queue.quarantined() == {}
        assert queue.attempt_count("task-0001", 2) == 0
        assert "task-0001" in queue.pending()

        worker_loop(tmp_path / "queue", None, drain=True)
        results, failures, _ = queue.collect()
        assert failures == {}
        assert results == _oracle(seeds)

    def test_requeue_filters_by_seed(self, tmp_path, monkeypatch):
        queue = _make_queue(tmp_path, [1, 2, 3], chunk_size=1)
        monkeypatch.setenv("REPRO_WORKER_FAULT", "raise:1,raise:3")
        worker_loop(tmp_path / "queue", None, drain=True)
        assert set(queue.quarantined()) == {1, 3}

        assert requeue_quarantined(tmp_path / "queue", seed=7) == {}
        released = requeue_quarantined(tmp_path / "queue", seed=3)
        assert released == {queue.sweep_id: [3]}
        assert set(queue.quarantined()) == {1}


class TestCoordinatorOfLastResort:
    def test_sweep_completes_when_every_worker_dies(self, tmp_path):
        """All local daemons dead: the coordinator notices the stall
        and drains inline — a distributed sweep always terminates."""
        seeds = seed_range(3)
        sequential = run_sweep(SCENARIO, seeds, workers=1, smoke=True)
        # Every worker that picks up seed 1's task dies... but the
        # exactly-once flag means only the first daemon dies; with one
        # worker the coordinator must finish the job itself.
        os.environ["REPRO_WORKER_FAULT"] = "sigkill:1"
        try:
            distributed = run_sweep(
                SCENARIO, seeds, workers=1, backend="distributed",
                smoke=True, queue_dir=tmp_path / "q",
                cache_dir=tmp_path / "c", lease_ttl=0.5, chunk_size=3,
            )
        finally:
            del os.environ["REPRO_WORKER_FAULT"]
        assert distributed.per_seed == sequential.per_seed
        assert distributed.mean == sequential.mean
        assert distributed.steals >= 1
