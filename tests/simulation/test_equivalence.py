"""The sequential-vs-parallel equivalence suite (the PR's headline).

For **every registered scenario**, the sweep runtime must return
*bit-identical* results to the sequential oracle — same per-seed values,
same mean — for any worker count, any backend, any ``chunk_size``, and
whether the seeds were computed cold or replayed from the persistent
result cache.  Equality is asserted with ``==`` on the result
dataclasses, i.e. exact float comparison: every path shares the
reduction code and the per-seed runs are deterministic, so there is no
tolerance to hide behind.
"""

import os
import time

import pytest

from repro.simulation import registry
from repro.simulation.parallel import ParallelRunner
from repro.simulation.runner import average_rates, average_series
from repro.simulation.sweep import run_sweep, seed_range

SEEDS = [11, 12, 13]

# The oracle is deterministic, so each (scenario, seeds) pair is computed
# once and shared by every comparison in this module.
_ORACLE_MEMO = {}


def _sequential_average(spec, seeds):
    key = (spec.name, tuple(seeds))
    if key not in _ORACLE_MEMO:
        run = spec.bound(smoke=True)
        if spec.kind == "rates":
            _ORACLE_MEMO[key] = average_rates(run, seeds)
        else:
            _ORACLE_MEMO[key] = average_series(run, seeds)
    return _ORACLE_MEMO[key]


def _parallel_average(spec, seeds, workers, backend, chunk_size=None):
    run = spec.bound(smoke=True)
    runner = ParallelRunner(workers=workers, backend=backend,
                            chunk_size=chunk_size)
    if spec.kind == "rates":
        return runner.average_rates(run, seeds)
    return runner.average_series(run, seeds)


@pytest.mark.parametrize("name", registry.names())
class TestEveryScenario:
    def test_thread_pool_identical_to_sequential(self, name):
        spec = registry.get(name)
        sequential = _sequential_average(spec, SEEDS)
        parallel = _parallel_average(spec, SEEDS, workers=3, backend="thread")
        assert sequential == parallel

    def test_one_worker_identical_to_sequential(self, name):
        spec = registry.get(name)
        sequential = _sequential_average(spec, SEEDS)
        one_worker = _parallel_average(spec, SEEDS, workers=1, backend="process")
        assert sequential == one_worker

    @pytest.mark.parametrize("chunk_size", [1, 2, len(SEEDS) + 1])
    def test_any_chunk_size_identical_to_sequential(self, name, chunk_size):
        spec = registry.get(name)
        sequential = _sequential_average(spec, SEEDS)
        chunked = _parallel_average(
            spec, SEEDS, workers=3, backend="thread", chunk_size=chunk_size
        )
        assert sequential == chunked

    @pytest.mark.parametrize("workers", [1, 3])
    def test_distributed_identical_to_sequential(
        self, name, workers, tmp_path
    ):
        """The shared-directory work queue inherits the bit-identity
        contract: seq == parallel == distributed, for 1 and 3 local
        worker daemons, for every registered scenario."""
        spec = registry.get(name)
        sequential = _sequential_average(spec, SEEDS)
        sweep = run_sweep(
            name, SEEDS, workers=workers, backend="distributed",
            smoke=True, queue_dir=tmp_path / "queue",
            cache_dir=tmp_path / "cache",
        )
        assert sweep.mean == sequential
        assert sweep.timing.backend == "distributed"
        assert sweep.timing.workers == workers
        assert sweep.tasks_total >= 1
        # A healthy run recovers nothing: no steals, no requeues.
        assert sweep.steals == 0
        assert sweep.requeues == 0

    def test_warm_cache_rerun_identical(self, name, tmp_path):
        spec = registry.get(name)
        cold = run_sweep(name, SEEDS, workers=1, smoke=True,
                         cache_dir=tmp_path)
        warm = run_sweep(name, SEEDS, workers=1, smoke=True,
                         cache_dir=tmp_path)
        assert warm.cache_hits == len(SEEDS)
        assert warm.per_seed == cold.per_seed
        assert warm.variance == cold.variance
        # ...and both match the uncached sequential oracle, bit for bit.
        assert warm.mean == cold.mean == _sequential_average(spec, SEEDS)


class TestProcessPool:
    """Process-pool equivalence incl. the 8-seed / 4-worker criterion."""

    def test_eight_seeds_four_workers_identical(self):
        seeds = seed_range(8)
        sequential = run_sweep("fig15-environment", seeds, workers=1,
                               smoke=True)
        parallel = run_sweep("fig15-environment", seeds, workers=4,
                             backend="process", smoke=True)
        assert parallel.per_seed == sequential.per_seed
        assert parallel.mean == sequential.mean
        assert parallel.variance == sequential.variance
        assert parallel.timing.workers == 4
        assert parallel.timing.backend == "process"
        assert parallel.timing.wall_seconds > 0.0
        assert sequential.timing.backend == "sequential"

    def test_process_pool_identical_on_a_graph_scenario(self):
        spec = registry.get("fig7-mutuality")
        sequential = _sequential_average(spec, SEEDS)
        parallel = _parallel_average(spec, SEEDS, workers=3, backend="process")
        assert sequential == parallel

    @pytest.mark.parametrize("chunk_size", [2, 3])
    def test_chunked_process_pool_identical(self, chunk_size):
        seeds = seed_range(8)
        sequential = run_sweep("fig15-environment", seeds, workers=1,
                               smoke=True)
        chunked = run_sweep("fig15-environment", seeds, workers=4,
                            backend="process", smoke=True,
                            chunk_size=chunk_size)
        assert chunked.per_seed == sequential.per_seed
        assert chunked.mean == sequential.mean
        assert chunked.timing.chunk_size == chunk_size
        assert chunked.timing.backend == "process"


class TestCostSchedule:
    """The cost scheduler and autoscaler inherit the bit-identity
    contract: ``schedule="cost"`` reorders the queue and reshapes the
    chunks, autoscaling varies the fleet — neither may change a single
    bit of any result, and a healthy run still steals nothing."""

    @pytest.mark.parametrize("autoscale", [False, True])
    def test_cost_schedule_identical_to_sequential(
        self, autoscale, tmp_path
    ):
        from repro.api import ExecutionProfile, SweepSpec
        from repro.simulation.sweep import execute_sweep

        spec = registry.get("fig7-mutuality")
        sequential = _sequential_average(spec, SEEDS)
        profile = ExecutionProfile(
            workers=2, backend="distributed",
            queue_dir=str(tmp_path / "queue"),
            cache_dir=str(tmp_path / "cache"),
            schedule="cost", autoscale=autoscale,
            max_workers=3 if autoscale else None,
        )
        sweep = execute_sweep(
            SweepSpec("fig7-mutuality", seeds=SEEDS, smoke=True), profile
        )
        assert sweep.mean == sequential
        assert sweep.steals == 0
        assert sweep.requeues == 0

    def test_cost_campaign_identical_per_sweep(self, tmp_path):
        """A mixed-cost campaign under cost scheduling + autoscaling:
        every sweep's mean matches its own sequential oracle."""
        from repro.api import ExecutionProfile, SweepSpec
        from repro.simulation.sweep import execute_campaign

        names = ["fig15-environment", "fig7-mutuality", "fig8-inference"]
        profile = ExecutionProfile(
            workers=2, backend="distributed",
            queue_dir=str(tmp_path / "queue"),
            cache_dir=str(tmp_path / "cache"),
            schedule="cost", autoscale=True,
            min_workers=1, max_workers=3,
        )
        results = execute_campaign(
            [SweepSpec(name, seeds=SEEDS, smoke=True) for name in names],
            profile,
        )
        for name, result in zip(names, results):
            assert result.mean == _sequential_average(
                registry.get(name), SEEDS
            )
            assert result.steals == 0
            assert result.requeues == 0


@pytest.mark.slow
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2 or bool(os.environ.get("CI")),
    reason="wall-clock speedup needs >1 CPU and a quiet machine "
           "(shared CI runners make timing assertions flaky)",
)
def test_parallel_measurably_faster_on_multicore():
    """8 seeds / 4 workers beat the sequential run on real hardware.

    Per-seed work is padded to ~0.2 s so pool startup cannot dominate;
    the 1.3x bar is deliberately conservative for a 4-way fan-out.
    """
    seeds = seed_range(8)
    overrides = {"iterations": 400, "network": "twitter"}

    start = time.perf_counter()
    sequential = run_sweep("fig13-delegation", seeds, workers=1, smoke=True,
                           overrides=overrides)
    sequential_wall = time.perf_counter() - start

    parallel = run_sweep("fig13-delegation", seeds, workers=4,
                         backend="process", smoke=True, overrides=overrides)

    assert parallel.mean == sequential.mean
    assert parallel.timing.wall_seconds < sequential_wall / 1.3
