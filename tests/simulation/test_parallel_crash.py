"""Worker supervision in the process pool: deaths are survived.

A pool worker dying (OOM killer, segfault, ``os.kill``) poisons every
in-flight future with ``BrokenProcessPool``.  The runner must resubmit
the chunks that never completed on a fresh pool — up to the retry
budget — and name the poison chunk in :class:`WorkerCrashError` when
the budget runs out, instead of surfacing the opaque pool error.
"""

import os
import signal
from functools import partial
from pathlib import Path

import pytest

from repro.simulation.faults import DEFAULT_MAX_ATTEMPTS
from repro.simulation.parallel import ParallelRunner, WorkerCrashError


def _square(seed):
    return seed * seed


def _die(seed):
    """Every attempt at any seed kills its pool worker outright."""
    os.kill(os.getpid(), signal.SIGKILL)


def _die_once_on_three(marker_dir, seed):
    """Kill the worker on seed 3 exactly once (O_EXCL flag), then heal."""
    if seed == 3:
        flag = Path(marker_dir) / "crashed-once"
        try:
            os.close(os.open(flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            pass
        else:
            os.kill(os.getpid(), signal.SIGKILL)
    return seed * seed


def _raise_on_three(seed):
    if seed == 3:
        raise ValueError("seed 3 is unwell")
    return seed * seed


class TestWorkerCrashSupervision:
    def test_poison_chunk_raises_worker_crash_error(self):
        runner = ParallelRunner(workers=2, backend="process",
                                chunk_size=2, max_attempts=2)
        with pytest.raises(WorkerCrashError, match="presumed poison"):
            runner.map_seeds(_die, [1, 2, 3, 4])

    def test_error_names_the_chunk_and_budget(self):
        runner = ParallelRunner(workers=1, backend="process",
                                chunk_size=2, max_attempts=1)
        # workers=1 would run sequentially; force the pool path by
        # giving it two chunks.
        runner.workers = 2
        with pytest.raises(WorkerCrashError) as info:
            runner.map_seeds(_die, [5, 6, 7])
        error = info.value
        assert error.attempts == 1
        assert error.chunk_index in (0, 1)
        assert list(error.seeds) in ([5, 6], [7])
        assert str(error.chunk_index) in str(error)

    def test_transient_crash_is_resubmitted_and_ordered(self, tmp_path):
        """One worker death mid-sweep: the dead worker's chunks rerun
        on a fresh pool and the final results are complete, in seed
        order, with no error surfaced."""
        run = partial(_die_once_on_three, str(tmp_path))
        runner = ParallelRunner(workers=2, backend="process",
                                chunk_size=1)
        seeds = [1, 2, 3, 4, 5]
        assert runner.map_seeds(run, seeds) == [s * s for s in seeds]
        assert (tmp_path / "crashed-once").exists()

    def test_default_budget_is_shared_with_the_queue(self):
        runner = ParallelRunner(workers=2, backend="process",
                                chunk_size=2, max_attempts=None)
        with pytest.raises(WorkerCrashError) as info:
            runner.map_seeds(_die, [1, 2, 3, 4])
        assert info.value.attempts == DEFAULT_MAX_ATTEMPTS

    def test_seed_exceptions_still_propagate_raise_fast(self):
        """Ordinary exceptions are not worker deaths: no retry, no
        WorkerCrashError wrapper — the original error surfaces."""
        runner = ParallelRunner(workers=2, backend="process",
                                chunk_size=1)
        with pytest.raises(ValueError, match="seed 3 is unwell"):
            runner.map_seeds(_raise_on_three, [1, 2, 3, 4])

    def test_bad_max_attempts_rejected(self):
        with pytest.raises(ValueError, match="max_attempts"):
            ParallelRunner(max_attempts=0)

    def test_thread_backend_unaffected(self):
        runner = ParallelRunner(workers=2, backend="thread",
                                chunk_size=1, max_attempts=2)
        assert runner.map_seeds(_square, [1, 2, 3]) == [1, 4, 9]
