"""Tests for simulation configuration validation."""

import pytest

from repro.simulation.config import (
    DelegationConfig,
    EnvironmentConfig,
    MutualityConfig,
    RoleConfig,
    TransitivityConfig,
)


class TestRoleConfig:
    def test_defaults_are_paper_split(self):
        roles = RoleConfig()
        assert roles.trustor_fraction == 0.4
        assert roles.trustee_fraction == 0.4

    def test_fractions_must_fit(self):
        with pytest.raises(ValueError):
            RoleConfig(trustor_fraction=0.7, trustee_fraction=0.7)

    def test_fraction_range(self):
        with pytest.raises(ValueError):
            RoleConfig(trustor_fraction=1.2)


class TestMutualityConfig:
    def test_defaults_valid(self):
        MutualityConfig()

    def test_threshold_range(self):
        with pytest.raises(ValueError):
            MutualityConfig(threshold=1.5)

    def test_request_count_positive(self):
        with pytest.raises(ValueError):
            MutualityConfig(requests_per_trustor=0)

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            MutualityConfig(warmup_interactions=-1)

    def test_hops_at_least_one(self):
        with pytest.raises(ValueError):
            MutualityConfig(candidate_hops=0)


class TestTransitivityConfig:
    def test_defaults_valid(self):
        config = TransitivityConfig()
        assert config.num_characteristics == 4
        assert config.tasks_per_node == 2

    def test_characteristic_count_positive(self):
        with pytest.raises(ValueError):
            TransitivityConfig(num_characteristics=0)

    def test_max_chars_bounded_by_universe(self):
        with pytest.raises(ValueError):
            TransitivityConfig(num_characteristics=2,
                               max_task_characteristics=3)

    def test_catalog_zero_means_full_enumeration(self):
        TransitivityConfig(catalog_size=0)

    def test_catalog_must_cover_tasks_per_node(self):
        with pytest.raises(ValueError):
            TransitivityConfig(catalog_size=1, tasks_per_node=2)

    def test_record_fraction_range(self):
        with pytest.raises(ValueError):
            TransitivityConfig(record_fraction=1.5)

    def test_omega_range(self):
        with pytest.raises(ValueError):
            TransitivityConfig(omega_recommend=-0.1)


class TestDelegationConfig:
    def test_defaults_valid(self):
        config = DelegationConfig()
        assert config.iterations == 3000
        assert config.beta == 0.9

    def test_iterations_positive(self):
        with pytest.raises(ValueError):
            DelegationConfig(iterations=0)

    def test_beta_range(self):
        with pytest.raises(ValueError):
            DelegationConfig(beta=1.1)


class TestEnvironmentConfig:
    def test_default_schedule_is_fig15(self):
        config = EnvironmentConfig()
        assert config.schedule == ((100, 1.0), (100, 0.4), (100, 0.7))
        assert config.actual_success_rate == 0.8

    def test_runs_positive(self):
        with pytest.raises(ValueError):
            EnvironmentConfig(runs=0)

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            EnvironmentConfig(schedule=())
