"""Tests for the seeded sub-stream helpers."""

from repro.simulation.rng import spawn, uniform_unit


class TestSpawn:
    def test_same_scope_same_stream(self):
        a = spawn(7, "mutuality", "roles")
        b = spawn(7, "mutuality", "roles")
        assert [a.random() for _ in range(5)] == [
            b.random() for _ in range(5)
        ]

    def test_different_scopes_independent(self):
        a = spawn(7, "mutuality", "roles")
        b = spawn(7, "mutuality", "competence")
        assert [a.random() for _ in range(5)] != [
            b.random() for _ in range(5)
        ]

    def test_different_seeds_differ(self):
        a = spawn(1, "x")
        b = spawn(2, "x")
        assert a.random() != b.random()

    def test_seed_coerced_to_int(self):
        assert spawn(7.0, "x").random() == spawn(7, "x").random()

    def test_mixed_scope_types(self):
        stream = spawn(1, "a", 4, True, 0.35)
        assert 0.0 <= stream.random() <= 1.0


class TestUniformUnit:
    def test_in_unit_interval(self):
        stream = spawn(3, "unit")
        for _ in range(100):
            assert 0.0 <= uniform_unit(stream) <= 1.0
