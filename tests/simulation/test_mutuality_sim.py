"""Tests for the Fig. 7 mutuality simulation (shape assertions)."""

import pytest

from repro.simulation.config import MutualityConfig
from repro.simulation.mutuality import MutualitySimulation, sweep_thresholds
from repro.socialnet.datasets import twitter


@pytest.fixture(scope="module")
def graph():
    return twitter(seed=0)


@pytest.fixture(scope="module")
def sweep(graph):
    return sweep_thresholds(graph, thresholds=(0.0, 0.3, 0.6), seed=3)


class TestShapes:
    def test_three_results(self, sweep):
        assert [r.threshold for r in sweep] == [0.0, 0.3, 0.6]

    def test_rates_are_rates(self, sweep):
        for result in sweep:
            rates = result.rates
            for value in (rates.success_rate, rates.unavailable_rate,
                          rates.abuse_rate):
                assert 0.0 <= value <= 1.0

    def test_zero_threshold_accepts_everything(self, sweep):
        # theta = 0 is the unilateral baseline: no unanswered requests
        # (every trustor on this connected network has candidates).
        assert sweep[0].rates.unavailable_rate == pytest.approx(0.0, abs=0.02)

    def test_abuse_exceeds_04_without_reverse_evaluation(self, sweep):
        # The paper's headline: abuse rates are above 0.4 at theta = 0.
        assert sweep[0].rates.abuse_rate > 0.4

    def test_unavailable_increases_with_threshold(self, sweep):
        unavailable = [r.rates.unavailable_rate for r in sweep]
        assert unavailable[0] < unavailable[1] < unavailable[2]

    def test_abuse_decreases_with_threshold(self, sweep):
        abuse = [r.rates.abuse_rate for r in sweep]
        assert abuse[0] > abuse[1] > abuse[2]


class TestMechanics:
    def test_deterministic(self, graph):
        config = MutualityConfig(threshold=0.3)
        a = MutualitySimulation(graph, config, seed=5).run()
        b = MutualitySimulation(graph, config, seed=5).run()
        assert a.rates == b.rates

    def test_network_name_recorded(self, graph):
        result = MutualitySimulation(graph, seed=1).run()
        assert result.network == "twitter"

    def test_total_requests_counted(self, graph):
        config = MutualityConfig(requests_per_trustor=5)
        result = MutualitySimulation(graph, config, seed=1).run()
        expected = 5 * round(graph.node_count * 0.4)
        assert result.rates.total_requests == expected
