"""Tests for the Fig. 13 delegation-results simulation."""

import pytest

from repro.simulation.config import DelegationConfig
from repro.simulation.delegation import DelegationSimulation
from repro.socialnet.datasets import twitter


@pytest.fixture(scope="module")
def both_series():
    graph = twitter(seed=0)
    simulation = DelegationSimulation(
        graph, DelegationConfig(iterations=800), seed=3
    )
    first, second = simulation.run_both_strategies()
    return first, second


class TestShapes:
    def test_series_lengths(self, both_series):
        first, second = both_series
        assert len(first.series.values) == 800
        assert len(second.series.values) == 800

    def test_second_strategy_converges_higher(self, both_series):
        # Fig. 13's headline: evaluating gain/damage/cost beats success
        # rate alone.
        first, second = both_series
        assert second.converged_profit(200) > first.converged_profit(200)

    def test_second_strategy_profit_positive(self, both_series):
        _, second = both_series
        assert second.converged_profit(200) > 0.05

    def test_first_strategy_no_better_than_breakeven(self, both_series):
        first, _ = both_series
        assert first.converged_profit(200) < 0.05

    def test_second_strategy_improves_over_time(self, both_series):
        _, second = both_series
        head = sum(second.series.values[:50]) / 50
        tail = second.converged_profit(200)
        assert tail > head

    def test_labels(self, both_series):
        first, second = both_series
        assert "first" in first.strategy
        assert "second" in second.strategy


class TestMechanics:
    def test_deterministic(self):
        graph = twitter(seed=0)
        config = DelegationConfig(iterations=50)
        a = DelegationSimulation(graph, config, seed=5).run_both_strategies()
        b = DelegationSimulation(graph, config, seed=5).run_both_strategies()
        assert a[1].series.values == b[1].series.values

    def test_profit_bounded_by_stakes(self):
        # Realized per-iteration profit averages within [-2, 1] since all
        # stakes are in [0, 1].
        graph = twitter(seed=0)
        simulation = DelegationSimulation(
            graph, DelegationConfig(iterations=50), seed=5
        )
        series = simulation.run(
            __import__("repro.core.policy", fromlist=["NetProfitPolicy"])
            .NetProfitPolicy(), "probe"
        )
        for value in series.series.values:
            assert -2.0 <= value <= 1.0
