"""Unit tests for the parallel multi-seed runtime."""

import pickle
import warnings
from contextlib import contextmanager

import pytest


@contextmanager
def warnings_none():
    """Fail the block if any warning is emitted inside it."""
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        yield

from repro.simulation import parallel
from repro.simulation.parallel import (
    ParallelRunner,
    auto_chunk_size,
    default_workers,
)
from repro.simulation.results import RateSummary, SeriesResult
from repro.simulation.runner import average_rates, average_series


def rates_run(seed: int) -> RateSummary:
    """Module-level (hence picklable) deterministic per-seed run."""
    return RateSummary(
        success_rate=(seed % 7) / 7.0,
        unavailable_rate=(seed % 3) / 3.0,
        abuse_rate=(seed % 5) / 5.0,
        total_requests=seed,
    )


def series_run(seed: int) -> SeriesResult:
    return SeriesResult("s", [float(seed), seed / 3.0, seed * 7.0])


def ragged_run(seed: int) -> SeriesResult:
    return SeriesResult("ragged", [0.0] * (seed % 3 + 1))


class TestConstruction:
    def test_default_workers_at_least_one(self):
        assert default_workers() >= 1
        assert ParallelRunner().workers >= 1

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ParallelRunner(backend="greenlet")

    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelRunner(workers=0)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ParallelRunner(chunk_size=0)


class TestChunking:
    def test_auto_chunk_size_is_four_waves_per_worker(self):
        assert auto_chunk_size(seeds=64, workers=4) == 4  # 16 tasks
        assert auto_chunk_size(seeds=8, workers=4) == 1
        assert auto_chunk_size(seeds=100, workers=8) == 4  # ceil(100/32)
        assert auto_chunk_size(seeds=1, workers=16) == 1

    def test_auto_chunk_size_validates(self):
        with pytest.raises(ValueError, match="seed"):
            auto_chunk_size(seeds=0, workers=2)
        with pytest.raises(ValueError, match="workers"):
            auto_chunk_size(seeds=4, workers=0)

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 7, 100])
    def test_any_chunk_size_preserves_seed_order(self, chunk_size):
        runner = ParallelRunner(workers=3, backend="thread",
                                chunk_size=chunk_size)
        seeds = [9, 1, 5, 2, 8, 3, 6]
        results = runner.map_seeds(series_run, seeds)
        assert results == [series_run(seed) for seed in seeds]

    def test_chunk_size_recorded_in_timing(self):
        runner = ParallelRunner(workers=2, backend="thread", chunk_size=2)
        runner.map_seeds(rates_run, [1, 2, 3, 4])
        assert runner.last_timing.chunk_size == 2
        assert runner.last_timing.backend == "thread"

    def test_single_chunk_skips_the_pool(self):
        # One chunk leaves nothing to parallelize, so no pool is paid for.
        runner = ParallelRunner(workers=4, backend="process", chunk_size=10)
        results = runner.map_seeds(rates_run, [1, 2, 3])
        assert results == [rates_run(seed) for seed in [1, 2, 3]]
        assert runner.last_timing.backend == "sequential"
        assert runner.last_timing.workers == 1

    def test_workers_capped_by_chunk_count(self):
        runner = ParallelRunner(workers=4, backend="thread", chunk_size=3)
        runner.map_seeds(rates_run, [1, 2, 3, 4, 5, 6])
        assert runner.last_timing.workers == 2  # only two chunks exist


def _record_initialized():
    _INITIALIZED.append(True)


_INITIALIZED = []


class TestInitializer:
    def test_initializer_runs_in_thread_pool(self):
        _INITIALIZED.clear()
        runner = ParallelRunner(workers=2, backend="thread",
                                initializer=_record_initialized)
        runner.map_seeds(rates_run, [1, 2, 3, 4])
        assert len(_INITIALIZED) >= 1

    def test_initializer_runs_on_sequential_path(self):
        _INITIALIZED.clear()
        runner = ParallelRunner(workers=1, initializer=_record_initialized)
        runner.map_seeds(rates_run, [1, 2])
        assert _INITIALIZED == [True]


class TestMapSeeds:
    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            ParallelRunner(workers=1).map_seeds(rates_run, [])

    def test_results_in_seed_order(self):
        runner = ParallelRunner(workers=3, backend="thread")
        seeds = [9, 1, 5, 2]
        results = runner.map_seeds(series_run, seeds)
        assert results == [series_run(seed) for seed in seeds]

    def test_sequential_timing_recorded(self):
        runner = ParallelRunner(workers=1)
        runner.map_seeds(rates_run, [1, 2, 3])
        timing = runner.last_timing
        assert timing.seeds == 3
        assert timing.workers == 1
        assert timing.backend == "sequential"
        assert timing.wall_seconds >= 0.0
        assert timing.seeds_per_second() > 0.0

    def test_parallel_timing_recorded(self):
        runner = ParallelRunner(workers=2, backend="thread")
        runner.map_seeds(rates_run, [1, 2, 3])
        assert runner.last_timing.workers == 2
        assert runner.last_timing.backend == "thread"

    def test_workers_capped_by_seed_count(self):
        runner = ParallelRunner(workers=8, backend="thread")
        runner.map_seeds(rates_run, [4, 5])
        assert runner.last_timing.workers == 2

    def test_unpicklable_run_falls_back_sequentially_with_warning(self):
        offset = 0.25
        closure = lambda seed: RateSummary(  # noqa: E731 - deliberately unpicklable
            success_rate=offset, unavailable_rate=0.0, abuse_rate=0.0
        )
        with pytest.raises(Exception):
            pickle.dumps(closure)
        parallel._WARNED_UNPICKLABLE.clear()
        runner = ParallelRunner(workers=4, backend="process")
        with pytest.warns(RuntimeWarning, match="not picklable") as caught:
            results = runner.map_seeds(closure, [1, 2])
        # The callable is named, so the degradation is diagnosable.
        assert "<lambda>" in str(caught[0].message)
        assert [r.success_rate for r in results] == [0.25, 0.25]
        assert runner.last_timing.backend == "sequential"

    def test_unpicklable_warning_fires_once_per_callable(self):
        closure = lambda seed: rates_run(seed)  # noqa: E731
        parallel._WARNED_UNPICKLABLE.clear()
        runner = ParallelRunner(workers=2, backend="process")
        with pytest.warns(RuntimeWarning, match="not picklable"):
            runner.map_seeds(closure, [1, 2])
        with warnings_none():
            runner.map_seeds(closure, [3, 4])


class TestAveragingAPI:
    def test_average_rates_matches_oracle_thread(self):
        seeds = [3, 1, 4, 1, 5]
        runner = ParallelRunner(workers=3, backend="thread")
        assert runner.average_rates(rates_run, seeds) == average_rates(
            rates_run, seeds
        )

    def test_average_rates_matches_oracle_process(self):
        seeds = [2, 7, 1, 8]
        runner = ParallelRunner(workers=2, backend="process")
        assert runner.average_rates(rates_run, seeds) == average_rates(
            rates_run, seeds
        )

    def test_average_series_matches_oracle(self):
        seeds = [6, 2, 8]
        runner = ParallelRunner(workers=3, backend="thread")
        assert runner.average_series(series_run, seeds) == average_series(
            series_run, seeds
        )

    def test_ragged_series_rejected_in_parallel_path(self):
        runner = ParallelRunner(workers=2, backend="thread")
        with pytest.raises(ValueError, match="lengths"):
            runner.average_series(ragged_run, [1, 2])

    def test_single_worker_is_the_oracle(self):
        seeds = [10, 20]
        runner = ParallelRunner(workers=1)
        assert runner.average_rates(rates_run, seeds) == average_rates(
            rates_run, seeds
        )
