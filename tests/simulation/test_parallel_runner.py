"""Unit tests for the parallel multi-seed runtime."""

import pickle

import pytest

from repro.simulation.parallel import ParallelRunner, default_workers
from repro.simulation.results import RateSummary, SeriesResult
from repro.simulation.runner import average_rates, average_series


def rates_run(seed: int) -> RateSummary:
    """Module-level (hence picklable) deterministic per-seed run."""
    return RateSummary(
        success_rate=(seed % 7) / 7.0,
        unavailable_rate=(seed % 3) / 3.0,
        abuse_rate=(seed % 5) / 5.0,
        total_requests=seed,
    )


def series_run(seed: int) -> SeriesResult:
    return SeriesResult("s", [float(seed), seed / 3.0, seed * 7.0])


def ragged_run(seed: int) -> SeriesResult:
    return SeriesResult("ragged", [0.0] * (seed % 3 + 1))


class TestConstruction:
    def test_default_workers_at_least_one(self):
        assert default_workers() >= 1
        assert ParallelRunner().workers >= 1

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ParallelRunner(backend="greenlet")

    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelRunner(workers=0)


class TestMapSeeds:
    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            ParallelRunner(workers=1).map_seeds(rates_run, [])

    def test_results_in_seed_order(self):
        runner = ParallelRunner(workers=3, backend="thread")
        seeds = [9, 1, 5, 2]
        results = runner.map_seeds(series_run, seeds)
        assert results == [series_run(seed) for seed in seeds]

    def test_sequential_timing_recorded(self):
        runner = ParallelRunner(workers=1)
        runner.map_seeds(rates_run, [1, 2, 3])
        timing = runner.last_timing
        assert timing.seeds == 3
        assert timing.workers == 1
        assert timing.backend == "sequential"
        assert timing.wall_seconds >= 0.0
        assert timing.seeds_per_second() > 0.0

    def test_parallel_timing_recorded(self):
        runner = ParallelRunner(workers=2, backend="thread")
        runner.map_seeds(rates_run, [1, 2, 3])
        assert runner.last_timing.workers == 2
        assert runner.last_timing.backend == "thread"

    def test_workers_capped_by_seed_count(self):
        runner = ParallelRunner(workers=8, backend="thread")
        runner.map_seeds(rates_run, [4, 5])
        assert runner.last_timing.workers == 2

    def test_unpicklable_run_falls_back_sequentially(self):
        offset = 0.25
        closure = lambda seed: RateSummary(  # noqa: E731 - deliberately unpicklable
            success_rate=offset, unavailable_rate=0.0, abuse_rate=0.0
        )
        with pytest.raises(Exception):
            pickle.dumps(closure)
        runner = ParallelRunner(workers=4, backend="process")
        results = runner.map_seeds(closure, [1, 2])
        assert [r.success_rate for r in results] == [0.25, 0.25]
        assert runner.last_timing.backend == "sequential"


class TestAveragingAPI:
    def test_average_rates_matches_oracle_thread(self):
        seeds = [3, 1, 4, 1, 5]
        runner = ParallelRunner(workers=3, backend="thread")
        assert runner.average_rates(rates_run, seeds) == average_rates(
            rates_run, seeds
        )

    def test_average_rates_matches_oracle_process(self):
        seeds = [2, 7, 1, 8]
        runner = ParallelRunner(workers=2, backend="process")
        assert runner.average_rates(rates_run, seeds) == average_rates(
            rates_run, seeds
        )

    def test_average_series_matches_oracle(self):
        seeds = [6, 2, 8]
        runner = ParallelRunner(workers=3, backend="thread")
        assert runner.average_series(series_run, seeds) == average_series(
            series_run, seeds
        )

    def test_ragged_series_rejected_in_parallel_path(self):
        runner = ParallelRunner(workers=2, backend="thread")
        with pytest.raises(ValueError, match="lengths"):
            runner.average_series(ragged_run, [1, 2])

    def test_single_worker_is_the_oracle(self):
        seeds = [10, 20]
        runner = ParallelRunner(workers=1)
        assert runner.average_rates(rates_run, seeds) == average_rates(
            rates_run, seeds
        )
