"""Tests for the Figs. 9-12 / Table 2 transitivity simulation."""

import pytest

from repro.core.transitivity import TransitivityMode
from repro.simulation.config import TransitivityConfig
from repro.simulation.transitivity import (
    TransitivitySimulation,
    sweep_characteristics,
)
from repro.socialnet.datasets import twitter


@pytest.fixture(scope="module")
def graph():
    return twitter(seed=0)


@pytest.fixture(scope="module")
def simulation(graph):
    return TransitivitySimulation(
        graph, TransitivityConfig(num_characteristics=4), seed=3
    )


@pytest.fixture(scope="module")
def by_mode(simulation):
    return {mode: simulation.run(mode) for mode in TransitivityMode}


class TestShapes:
    def test_rates_in_range(self, by_mode):
        for result in by_mode.values():
            assert 0.0 <= result.success_rate <= 1.0
            assert 0.0 <= result.unavailable_rate <= 1.0
            assert result.avg_potential_trustees >= 0.0

    def test_proposed_methods_beat_traditional_on_success(self, by_mode):
        traditional = by_mode[TransitivityMode.TRADITIONAL]
        for mode in (TransitivityMode.CONSERVATIVE,
                     TransitivityMode.AGGRESSIVE):
            assert by_mode[mode].success_rate > traditional.success_rate

    def test_proposed_methods_lower_unavailability(self, by_mode):
        traditional = by_mode[TransitivityMode.TRADITIONAL]
        for mode in (TransitivityMode.CONSERVATIVE,
                     TransitivityMode.AGGRESSIVE):
            assert by_mode[mode].unavailable_rate < \
                traditional.unavailable_rate

    def test_more_potential_trustees_found(self, by_mode):
        counts = {
            mode: result.avg_potential_trustees
            for mode, result in by_mode.items()
        }
        assert counts[TransitivityMode.AGGRESSIVE] > \
            counts[TransitivityMode.TRADITIONAL]
        assert counts[TransitivityMode.CONSERVATIVE] > \
            counts[TransitivityMode.TRADITIONAL]

    def test_aggressive_has_largest_search_overhead(self, by_mode):
        def mean_inquiries(result):
            counts = result.inquiry_counts
            return sum(counts) / len(counts)

        assert mean_inquiries(by_mode[TransitivityMode.AGGRESSIVE]) > \
            mean_inquiries(by_mode[TransitivityMode.CONSERVATIVE]) > \
            mean_inquiries(by_mode[TransitivityMode.TRADITIONAL])

    def test_inquiry_counts_sorted_for_fig12(self, by_mode):
        for result in by_mode.values():
            assert list(result.inquiry_counts) == sorted(result.inquiry_counts)


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self, graph):
        return sweep_characteristics(
            graph, counts=(4, 7),
            modes=(TransitivityMode.AGGRESSIVE,), seed=3,
        )

    def test_success_decreases_with_more_characteristics(self, sweep):
        # The Fig. 9 trend: a larger task-type space starves the search.
        by_k = {r.num_characteristics: r for r in sweep}
        assert by_k[7].success_rate < by_k[4].success_rate

    def test_unavailability_increases_with_more_characteristics(self, sweep):
        by_k = {r.num_characteristics: r for r in sweep}
        assert by_k[7].unavailable_rate > by_k[4].unavailable_rate


class TestPropertyBasedVariant:
    def test_property_tasks_build_and_run(self, graph):
        simulation = TransitivitySimulation(
            graph, TransitivityConfig(num_characteristics=4), seed=3,
            property_based_tasks=True,
        )
        result = simulation.run(TransitivityMode.CONSERVATIVE)
        assert result.network == "twitter"
        assert all(
            task.name.startswith("ptask-") for task in simulation.catalog
        )

    def test_property_catalog_limits_characteristics(self, graph):
        simulation = TransitivitySimulation(
            graph, TransitivityConfig(num_characteristics=4), seed=3,
            property_based_tasks=True,
        )
        universe = set()
        for task in simulation.catalog:
            universe.update(task.characteristics)
        assert len(universe) <= 4


class TestDeterminism:
    def test_same_seed_same_result(self, graph):
        config = TransitivityConfig(num_characteristics=5)
        a = TransitivitySimulation(graph, config, seed=8).run(
            TransitivityMode.CONSERVATIVE
        )
        b = TransitivitySimulation(graph, config, seed=8).run(
            TransitivityMode.CONSERVATIVE
        )
        assert a == b
