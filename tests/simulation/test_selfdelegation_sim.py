"""Tests for the Eq. 24 self-delegation simulation."""

import pytest

from repro.simulation.selfdelegation import SelfDelegationSimulation
from repro.socialnet.datasets import twitter


@pytest.fixture(scope="module")
def result():
    return SelfDelegationSimulation(
        twitter(seed=0), tasks_per_trustor=60, seed=1
    ).run()


class TestEq24Rule:
    def test_eq24_at_least_always_self(self, result):
        assert result.eq24 >= result.always_self - 0.02

    def test_eq24_at_least_always_delegate(self, result):
        assert result.eq24 >= result.always_delegate - 0.02

    def test_mix_of_modes(self, result):
        # With heterogeneous self-competence, Eq. 24 sends some tasks
        # out and keeps others.
        assert 0.05 < result.eq24_delegation_share < 0.95

    def test_as_row_keys(self, result):
        row = result.as_row()
        assert set(row) == {
            "always-self", "always-delegate", "eq24",
            "eq24 delegation share",
        }


class TestMechanics:
    def test_deterministic(self):
        graph = twitter(seed=0)
        a = SelfDelegationSimulation(graph, tasks_per_trustor=10,
                                     seed=4).run()
        b = SelfDelegationSimulation(graph, tasks_per_trustor=10,
                                     seed=4).run()
        assert a == b

    def test_self_execution_has_no_delegation_cost(self):
        simulation = SelfDelegationSimulation(
            twitter(seed=0), tasks_per_trustor=1, seed=2
        )
        for factors in simulation.self_factors.values():
            assert factors.cost == 0.0
            assert factors.success_rate >= 0.5

    def test_candidates_are_one_hop_capped(self):
        simulation = SelfDelegationSimulation(
            twitter(seed=0), tasks_per_trustor=1, seed=2
        )
        for candidates in simulation.candidate_factors.values():
            assert len(candidates) <= 5
