"""Concurrency tests for the persistent sweep cache.

The cache's cross-process contract is "plain files, atomic writes, no
coordination": two processes hammering the same key simultaneously must
never produce a corrupt entry — any reader sees either nothing or one
writer's complete payload.  A barrier lines the writers up so the
``os.replace`` races actually overlap.

The second half pins ``REPRO_CACHE_DIR`` isolation for the new async
IoT scenarios: sweeps cache under the override directory and nowhere
else, and a warm rerun replays bit-identically from it.
"""

import json
import multiprocessing
import os
from pathlib import Path

import pytest

from repro.simulation.cache import SweepCache, default_cache_dir
from repro.simulation.results import SeriesResult
from repro.simulation.sweep import run_sweep

WRITERS = 4
WRITES_PER_PROCESS = 25


def _hammer(root: str, key: str, barrier, writer_index: int) -> None:
    """One writer process: wait at the barrier, then write in a loop."""
    cache = SweepCache(Path(root))
    result = SeriesResult(
        label=f"writer-{writer_index}", values=[float(writer_index)] * 4
    )
    barrier.wait()
    for _ in range(WRITES_PER_PROCESS):
        cache.put(key, result, scenario="race", seed=writer_index)


class TestAtomicWriteRace:
    def test_concurrent_same_key_writes_never_corrupt(self, tmp_path):
        key = SweepCache.key("race", (), 0, version="race-test")
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(WRITERS)
        processes = [
            context.Process(
                target=_hammer, args=(str(tmp_path), key, barrier, index)
            )
            for index in range(WRITERS)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0

        # The surviving entry parses and is exactly one writer's payload
        # — torn/interleaved writes would fail either check.
        cache = SweepCache(tmp_path)
        result = cache.get(key)
        assert result is not None
        assert cache.stats.hits == 1
        assert result.values in [
            [float(index)] * 4 for index in range(WRITERS)
        ]
        # No leftover temp files: every writer's os.replace completed.
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []

    def test_raw_file_is_valid_json_after_race(self, tmp_path):
        key = SweepCache.key("race2", (), 1, version="race-test")
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(2)
        processes = [
            context.Process(
                target=_hammer, args=(str(tmp_path), key, barrier, index)
            )
            for index in range(2)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
        path = tmp_path / key[:2] / f"{key}.json"
        payload = json.loads(path.read_text())  # raises on corruption
        assert payload["scenario"] == "race"
        assert payload["result"]["kind"] == "series"


class TestCacheDirIsolationForIotScenarios:
    @pytest.mark.parametrize("scenario", [
        "fig14-activetime-async", "fig8-inference-async",
    ])
    def test_repro_cache_dir_isolation(self, scenario, tmp_path,
                                       monkeypatch):
        """Sweeps of the async IoT scenarios cache under the override
        directory — and only there — and replay from it bit-identically."""
        isolated = tmp_path / "isolated"
        elsewhere = tmp_path / "elsewhere"
        elsewhere.mkdir()
        monkeypatch.setenv("REPRO_CACHE_DIR", str(isolated))
        assert default_cache_dir() == isolated

        seeds = [1, 2]
        cold = run_sweep(scenario, seeds, smoke=True,
                         cache_dir=default_cache_dir())
        assert cold.cache_misses == len(seeds)
        entries = list(isolated.rglob("*.json"))
        assert len(entries) == len(seeds)
        assert list(elsewhere.rglob("*")) == []

        warm = run_sweep(scenario, seeds, smoke=True,
                         cache_dir=default_cache_dir())
        assert warm.cache_hits == len(seeds)
        assert warm.per_seed == cold.per_seed
        assert warm.mean == cold.mean

    def test_sync_and_async_scenarios_cache_separately(self, tmp_path):
        """Same figure, different backend -> different cache keys; a
        warm async sweep never replays sync entries (or vice versa)."""
        sync = run_sweep("fig14-activetime", [1], smoke=True,
                         cache_dir=tmp_path)
        assert sync.cache_misses == 1
        crossed = run_sweep("fig14-activetime-async", [1], smoke=True,
                            cache_dir=tmp_path)
        assert crossed.cache_misses == 1  # not served by the sync entry
        assert crossed.cache_hits == 0
        # ...even though the reduced values are bit-identical.
        assert crossed.per_seed == sync.per_seed
