"""Tests for scenario construction (roles + hidden ground truth)."""

import pytest

from repro.simulation.config import RoleConfig
from repro.simulation.scenario import build_scenario
from repro.socialnet.datasets import twitter
from repro.socialnet.graph import SocialGraph


@pytest.fixture(scope="module")
def graph() -> SocialGraph:
    return twitter(seed=0)


class TestRoles:
    def test_fractions_respected(self, graph):
        scenario = build_scenario(graph, seed=1)
        assert len(scenario.trustors) == round(graph.node_count * 0.4)
        assert len(scenario.trustees) == round(graph.node_count * 0.4)

    def test_roles_disjoint(self, graph):
        scenario = build_scenario(graph, seed=1)
        assert not set(scenario.trustors) & set(scenario.trustees)

    def test_deterministic(self, graph):
        a = build_scenario(graph, seed=4)
        b = build_scenario(graph, seed=4)
        assert a.trustors == b.trustors
        assert a.trustees == b.trustees

    def test_seed_changes_assignment(self, graph):
        a = build_scenario(graph, seed=1)
        b = build_scenario(graph, seed=2)
        assert a.trustors != b.trustors

    def test_custom_fractions(self, graph):
        scenario = build_scenario(
            graph, seed=1,
            roles=RoleConfig(trustor_fraction=0.1, trustee_fraction=0.2),
        )
        assert len(scenario.trustors) == round(graph.node_count * 0.1)


class TestGroundTruth:
    def test_responsibility_assigned_to_every_trustor(self, graph):
        scenario = build_scenario(graph, seed=1)
        assert set(scenario.responsibility) == set(scenario.trustors)
        for value in scenario.responsibility.values():
            assert 0.0 <= value <= 1.0

    def test_competence_memoized(self, graph):
        scenario = build_scenario(graph, seed=1)
        node = scenario.trustees[0]
        assert scenario.competence(node, "task-x") == scenario.competence(
            node, "task-x"
        )

    def test_competence_order_independent(self, graph):
        a = build_scenario(graph, seed=1)
        b = build_scenario(graph, seed=1)
        node = a.trustees[0]
        # Query b in a different order first.
        b.competence(node, "task-y")
        assert a.competence(node, "task-x") == b.competence(node, "task-x")

    def test_competence_in_unit_interval(self, graph):
        scenario = build_scenario(graph, seed=1)
        for node in scenario.trustees[:10]:
            assert 0.0 <= scenario.competence(node, "t") <= 1.0


class TestNeighborQueries:
    def test_one_hop_trustee_neighbors(self):
        graph = SocialGraph.from_edges([(0, 1), (0, 2), (1, 3)])
        scenario = build_scenario(
            graph, seed=0, roles=RoleConfig(0.0, 0.0)
        )
        scenario.trustees = [1, 3]
        assert scenario.trustee_neighbors(0, hops=1) == [1]

    def test_two_hop_trustee_neighbors(self):
        graph = SocialGraph.from_edges([(0, 1), (1, 3), (3, 4)])
        scenario = build_scenario(
            graph, seed=0, roles=RoleConfig(0.0, 0.0)
        )
        scenario.trustees = [3, 4]
        assert scenario.trustee_neighbors(0, hops=2) == [3]
        assert scenario.trustee_neighbors(0, hops=3) == [3, 4]

    def test_self_excluded(self):
        graph = SocialGraph.from_edges([(0, 1)])
        scenario = build_scenario(graph, seed=0, roles=RoleConfig(0.0, 0.0))
        scenario.trustees = [0, 1]
        assert 0 not in scenario.trustee_neighbors(0, hops=1)
