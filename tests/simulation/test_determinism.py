"""Determinism regression tests: golden values for the seeded streams.

The parallel runtime is only provably equivalent to the sequential
oracle if the per-seed ground truth never depends on *where* or *when*
it is drawn.  These tests pin the actual values produced by
``simulation.rng.spawn`` and ``Scenario.competence`` for fixed seeds, so
any change that silently shifts the ground truth — a reordered draw, a
different hash salt, a shared stream — fails loudly instead of skewing
every figure.
"""

import pytest

from repro.simulation.rng import spawn
from repro.simulation.scenario import build_scenario
from repro.socialnet.graph import SocialGraph


def hexa_graph() -> SocialGraph:
    return SocialGraph.from_edges(
        [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 0)], name="hexa"
    )


class TestSpawnGolden:
    def test_fixed_scope_golden_values(self):
        stream = spawn(7, "mutuality", "roles")
        assert [stream.random() for _ in range(3)] == [
            0.2670024846500728,
            0.14701364078151713,
            0.2065354502584561,
        ]

    def test_scenario_scope_golden_values(self):
        stream = spawn(0, "scenario", "responsibility", "triangle")
        assert [stream.random() for _ in range(3)] == [
            0.9372469961297278,
            0.18057485765235293,
            0.48677924919924465,
        ]

    def test_same_scope_same_stream(self):
        first = spawn(11, "a", "b", 0.5)
        second = spawn(11, "a", "b", 0.5)
        assert [first.random() for _ in range(5)] == [
            second.random() for _ in range(5)
        ]

    def test_different_scopes_differ(self):
        assert spawn(11, "a").random() != spawn(11, "b").random()
        assert spawn(11, "a").random() != spawn(12, "a").random()


class TestScenarioGolden:
    def test_roles_and_responsibility_golden(self):
        scenario = build_scenario(hexa_graph(), seed=3)
        assert scenario.trustors == [0, 2]
        assert scenario.trustees == [3, 4]
        assert scenario.responsibility == {
            0: 0.15721037037637609,
            2: 0.6973229779572131,
        }

    def test_competence_golden(self):
        scenario = build_scenario(hexa_graph(), seed=3)
        assert scenario.competence(3, "resource-use") == pytest.approx(
            0.8440341254255479, abs=0.0
        )
        assert scenario.competence(4, "resource-use") == pytest.approx(
            0.04689986252736855, abs=0.0
        )
        assert scenario.competence(3, "char-0") == pytest.approx(
            0.06772754163288486, abs=0.0
        )
        assert scenario.competence(4, "char-0") == pytest.approx(
            0.15347528668919752, abs=0.0
        )

    def test_competence_order_independent(self):
        """Ground truth must not depend on who asks first."""
        forward = build_scenario(hexa_graph(), seed=3)
        backward = build_scenario(hexa_graph(), seed=3)
        keys = [(3, "resource-use"), (4, "char-0"), (3, "char-0")]
        drawn_forward = {k: forward.competence(*k) for k in keys}
        drawn_backward = {
            k: backward.competence(*k) for k in reversed(keys)
        }
        assert drawn_forward == drawn_backward

    def test_competence_memoized(self):
        scenario = build_scenario(hexa_graph(), seed=3)
        assert scenario.competence(3, "x") is scenario.competence(3, "x")
