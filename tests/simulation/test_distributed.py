"""Unit tests for the shared-directory distributed sweep queue.

The lease protocol (exclusive claims, heartbeats, steals), the task
sharding, the worker loop and the coordinator are each pinned here at
the file level; the fault-injection suite and the equivalence suite
cover the end-to-end crash and bit-identity contracts.
"""

import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.simulation import registry
from repro.simulation.cache import SweepCache
from repro.simulation.distributed import (
    WorkQueue,
    default_worker_id,
    execute_distributed,
    params_signature,
    rehydrate_params,
    worker_loop,
)
from repro.simulation.sweep import run_sweep, seed_range

SCENARIO = "fig15-environment"


def _make_queue(tmp_path, seeds=(1, 2, 3, 4), chunk_size=2):
    spec = registry.get(SCENARIO)
    params = spec.params_key(smoke=True)
    return WorkQueue.create(
        tmp_path / "queue", SCENARIO, params, list(seeds), chunk_size
    )


class TestParamsSignature:
    def test_order_independent(self):
        a = params_signature({"x": 1, "y": [1, 2], "z": "s"})
        b = params_signature({"z": "s", "y": [1, 2], "x": 1})
        assert a == b

    def test_round_trips_through_json(self):
        spec = registry.get("fig16-light")
        params = spec.params_key(smoke=True)  # contains nested tuples
        wire = json.loads(json.dumps([[k, v] for k, v in params]))
        assert rehydrate_params(wire) == params

    def test_rehydrated_params_key_cache_keys_match(self):
        for name in registry.names():
            spec = registry.get(name)
            params = spec.params_key(smoke=True)
            wire = json.loads(json.dumps([[k, v] for k, v in params]))
            assert SweepCache.key(name, rehydrate_params(wire), 7) == (
                SweepCache.key(name, params, 7)
            )


class TestWorkQueueLayout:
    def test_create_shards_contiguous_chunks(self, tmp_path):
        queue = _make_queue(tmp_path, seeds=(5, 6, 7, 8, 9), chunk_size=2)
        chunks = queue.manifest["chunks"]
        assert list(chunks.values()) == [[5, 6], [7, 8], [9]]
        assert queue.task_ids() == sorted(chunks)
        for task_id in queue.task_ids():
            task = queue.read_task(task_id)
            assert task["scenario"] == SCENARIO
            assert task["seeds"] == chunks[task_id]

    def test_manifest_records_code_version(self, tmp_path):
        from repro.simulation.cache import code_version

        queue = _make_queue(tmp_path)
        assert queue.manifest["code_version"] == code_version()

    def test_discover_finds_created_sweeps(self, tmp_path):
        queue = _make_queue(tmp_path)
        found = WorkQueue.discover(tmp_path / "queue")
        assert [q.sweep_id for q in found] == [queue.sweep_id]

    def test_discover_skips_junk_entries(self, tmp_path):
        _make_queue(tmp_path)
        (tmp_path / "queue" / "not-a-sweep").mkdir()
        (tmp_path / "queue" / "stray.txt").write_text("junk")
        assert len(WorkQueue.discover(tmp_path / "queue")) == 1

    def test_empty_seed_list_rejected(self, tmp_path):
        spec = registry.get(SCENARIO)
        with pytest.raises(ValueError, match="at least one seed"):
            WorkQueue.create(
                tmp_path, SCENARIO, spec.params_key(smoke=True), [], 1
            )


class TestLeases:
    def test_claim_is_exclusive(self, tmp_path):
        queue = _make_queue(tmp_path)
        first = queue.claim("task-0000", "alice")
        second = queue.claim("task-0000", "bob")
        assert first is not None and not first.stolen
        assert second is None

    def test_release_reopens_the_task(self, tmp_path):
        queue = _make_queue(tmp_path)
        claim = queue.claim("task-0000", "alice")
        queue.release(claim)
        again = queue.claim("task-0000", "bob")
        assert again is not None and not again.stolen

    def test_fresh_lease_cannot_be_stolen(self, tmp_path):
        queue = _make_queue(tmp_path)
        assert queue.claim("task-0000", "alice", lease_ttl=30.0)
        assert queue.claim("task-0000", "bob", lease_ttl=30.0) is None
        assert queue.counters().steals == 0

    def test_expired_lease_is_stolen_once(self, tmp_path):
        queue = _make_queue(tmp_path)
        claim = queue.claim("task-0000", "alice")
        # Back-date the heartbeat: the owner is presumed dead.
        past = time.time() - 3600
        os.utime(claim.lease_path, (past, past))
        stolen = queue.claim("task-0000", "bob", lease_ttl=1.0)
        assert stolen is not None and stolen.stolen
        assert stolen.lease_path.read_text() == "bob"
        # The new lease is fresh again; a third claimer is locked out.
        assert queue.claim("task-0000", "carol", lease_ttl=1.0) is None
        assert queue.counters().steals == 1

    def test_heartbeat_refreshes_and_detects_theft(self, tmp_path):
        queue = _make_queue(tmp_path)
        claim = queue.claim("task-0000", "alice")
        past = time.time() - 3600
        os.utime(claim.lease_path, (past, past))
        assert queue.heartbeat(claim)  # still ours: mtime refreshed
        assert time.time() - claim.lease_path.stat().st_mtime < 60
        stolen = queue.claim("task-0000", "bob", lease_ttl=1.0)
        assert stolen is None  # heartbeat revived it
        # Simulate an actual theft: someone else's owner id in the file.
        claim.lease_path.write_text("mallory")
        assert not queue.heartbeat(claim)

    def test_concurrent_claimers_one_winner(self, tmp_path):
        queue = _make_queue(tmp_path)
        barrier = threading.Barrier(8)
        wins = []

        def contend(name):
            barrier.wait()
            claim = queue.claim("task-0000", name)
            if claim is not None:
                wins.append(name)

        threads = [
            threading.Thread(target=contend, args=(f"w{i}",))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(wins) == 1

    def test_claim_of_done_task_is_refused(self, tmp_path):
        queue = _make_queue(tmp_path)
        queue.mark_done("task-0000", {"results": {}})
        assert queue.claim("task-0000", "alice") is None
        # And the probe lease did not linger.
        assert not (queue.sweep_dir / "leases" / "task-0000.lease").exists()


class TestRepair:
    def test_corrupt_task_file_rewritten_from_manifest(self, tmp_path):
        queue = _make_queue(tmp_path)
        path = queue.sweep_dir / "tasks" / "task-0001.json"
        original = queue.read_task("task-0001")
        path.write_text("{definitely not json")
        assert queue.read_task("task-0001") is None
        assert queue.repair() == 1
        assert queue.read_task("task-0001") == original
        assert queue.counters().repairs == 1
        assert queue.counters().requeues == 1

    def test_missing_task_file_rewritten(self, tmp_path):
        queue = _make_queue(tmp_path)
        (queue.sweep_dir / "tasks" / "task-0000.json").unlink()
        assert queue.repair() == 1
        assert queue.read_task("task-0000") is not None

    def test_identical_corruption_repaired_concurrently_counts_once(
        self, tmp_path
    ):
        queue = _make_queue(tmp_path)
        path = queue.sweep_dir / "tasks" / "task-0000.json"
        path.write_text("garbage")
        assert queue.repair() == 1
        # A second repairer that raced on the same corrupt bytes finds
        # the content-keyed marker and does not double-count.
        path.write_text("garbage")
        assert queue.repair() == 0
        assert queue.counters().repairs == 1

    def test_done_tasks_never_repaired(self, tmp_path):
        queue = _make_queue(tmp_path)
        queue.mark_done("task-0000", {"results": {}})
        (queue.sweep_dir / "tasks" / "task-0000.json").write_text("junk")
        assert queue.repair() == 0


class TestWorkerLoop:
    def test_drain_completes_queue_with_oracle_results(self, tmp_path):
        spec = registry.get(SCENARIO)
        queue = _make_queue(tmp_path, seeds=(1, 2, 3), chunk_size=2)
        stats = worker_loop(
            tmp_path / "queue", tmp_path / "cache", drain=True
        )
        assert stats.tasks_done == 2
        assert stats.seeds_run == 3
        assert queue.is_complete()
        results, _, totals = queue.collect()
        for seed in (1, 2, 3):
            assert results[seed] == spec.run(seed, smoke=True)
        assert totals.cache_misses == 3
        # Leases are all released once their done markers landed.
        assert not list((queue.sweep_dir / "leases").glob("*.lease"))

    def test_second_drain_replays_from_cache(self, tmp_path):
        queue = _make_queue(tmp_path, seeds=(1, 2), chunk_size=1)
        worker_loop(tmp_path / "queue", tmp_path / "cache", drain=True)
        first, _, _ = queue.collect()
        # A fresh sweep over the same seeds: all hits, same bits.
        queue2 = _make_queue(tmp_path, seeds=(1, 2), chunk_size=1)
        stats = worker_loop(
            tmp_path / "queue", tmp_path / "cache", drain=True
        )
        second, _, totals = queue2.collect()
        assert stats.cache_hits == 2 and stats.cache_misses == 0
        assert totals.cache_hits == 2
        assert second == first

    def test_without_cache_results_come_from_done_markers(self, tmp_path):
        spec = registry.get(SCENARIO)
        queue = _make_queue(tmp_path, seeds=(4,), chunk_size=1)
        worker_loop(tmp_path / "queue", None, drain=True)
        results, _, _ = queue.collect()
        assert results[4] == spec.run(4, smoke=True)

    def test_version_skew_sweep_is_skipped(self, tmp_path):
        queue = _make_queue(tmp_path, seeds=(1,), chunk_size=1)
        manifest = dict(queue.manifest)
        manifest["code_version"] = "0" * 16
        (queue.sweep_dir / "manifest.json").write_text(
            json.dumps(manifest)
        )
        with pytest.warns(RuntimeWarning, match="code version"):
            stats = worker_loop(tmp_path / "queue", None, drain=True)
        assert stats.tasks_done == 0
        assert not queue.is_complete()

    def test_max_tasks_stops_early(self, tmp_path):
        queue = _make_queue(tmp_path, seeds=(1, 2, 3, 4), chunk_size=1)
        stats = worker_loop(
            tmp_path / "queue", None, drain=True, max_tasks=2
        )
        assert stats.tasks_done == 2
        assert len(queue.pending()) == 2

    def test_stop_callable_breaks_the_daemon_loop(self, tmp_path):
        _make_queue(tmp_path, seeds=(1,), chunk_size=1)
        calls = []

        def stop():
            calls.append(None)
            return len(calls) > 2

        stats = worker_loop(tmp_path / "queue", None, stop=stop)
        assert stats.tasks_done <= 1  # terminated, not hung

    def test_collect_refuses_incomplete_queue(self, tmp_path):
        queue = _make_queue(tmp_path)
        with pytest.raises(RuntimeError, match="pending"):
            queue.collect()


class TestExecuteDistributed:
    def test_inline_drain_matches_oracle(self, tmp_path):
        spec = registry.get(SCENARIO)
        params = spec.params_key(smoke=True)
        outcome = execute_distributed(
            SCENARIO, params, [1, 2, 3], workers=0,
            queue_dir=tmp_path / "q", cache_root=tmp_path / "c",
        )
        for seed in (1, 2, 3):
            assert outcome.results[seed] == spec.run(seed, smoke=True)
        assert outcome.tasks == 3
        assert outcome.steals == 0 and outcome.requeues == 0
        # The sweep directory is cleaned up after collection.
        assert not list((tmp_path / "q").iterdir())

    def test_negative_workers_rejected(self, tmp_path):
        spec = registry.get(SCENARIO)
        with pytest.raises(ValueError, match="workers"):
            execute_distributed(
                SCENARIO, spec.params_key(smoke=True), [1], workers=-1,
                queue_dir=tmp_path,
            )

    def test_bad_lease_ttl_rejected(self, tmp_path):
        spec = registry.get(SCENARIO)
        with pytest.raises(ValueError, match="lease_ttl"):
            execute_distributed(
                SCENARIO, spec.params_key(smoke=True), [1], workers=0,
                queue_dir=tmp_path, lease_ttl=0.0,
            )


class TestRunSweepDistributed:
    def test_local_workers_bit_identical_with_counters(self, tmp_path):
        seeds = seed_range(4)
        sequential = run_sweep(SCENARIO, seeds, workers=1, smoke=True)
        distributed = run_sweep(
            SCENARIO, seeds, workers=2, backend="distributed", smoke=True,
            queue_dir=tmp_path / "q", cache_dir=tmp_path / "c",
        )
        assert distributed.per_seed == sequential.per_seed
        assert distributed.mean == sequential.mean
        assert distributed.variance == sequential.variance
        assert distributed.timing.backend == "distributed"
        assert distributed.timing.workers == 2
        assert distributed.tasks_total == len(seeds)
        assert distributed.steals == 0 and distributed.requeues == 0
        assert distributed.cache_misses == len(seeds)

    def test_warm_cache_skips_the_queue_entirely(self, tmp_path):
        seeds = seed_range(3)
        cold = run_sweep(
            SCENARIO, seeds, workers=0, backend="distributed", smoke=True,
            queue_dir=tmp_path / "q", cache_dir=tmp_path / "c",
        )
        warm = run_sweep(
            SCENARIO, seeds, workers=0, backend="distributed", smoke=True,
            queue_dir=tmp_path / "q", cache_dir=tmp_path / "c",
        )
        assert warm.cache_hits == len(seeds)
        assert warm.tasks_total == 0  # nothing was enqueued
        assert warm.timing.backend == "cache"
        assert warm.per_seed == cold.per_seed

    def test_external_worker_thread_joins_a_zero_worker_sweep(
        self, tmp_path
    ):
        """A daemon pointed at the queue dir picks up coordinator tasks."""
        queue_dir = tmp_path / "q"
        queue_dir.mkdir()
        done = threading.Event()
        stats_box = {}

        def external():
            stats_box["stats"] = worker_loop(
                queue_dir, tmp_path / "c", owner="external-1",
                poll=0.01, stop=done.is_set,
            )

        thread = threading.Thread(target=external)
        thread.start()
        try:
            sequential = run_sweep(
                SCENARIO, seed_range(4), workers=1, smoke=True
            )
            distributed = run_sweep(
                SCENARIO, seed_range(4), workers=0, backend="distributed",
                smoke=True, queue_dir=queue_dir, cache_dir=tmp_path / "c",
            )
        finally:
            done.set()
            thread.join(timeout=10)
        assert not thread.is_alive()
        assert distributed.mean == sequential.mean
        assert distributed.per_seed == sequential.per_seed

    def test_queue_dir_kwargs_rejected_for_pool_backends(self):
        with pytest.raises(ValueError, match="distributed"):
            run_sweep(SCENARIO, [1], workers=1, backend="process",
                      smoke=True, queue_dir="/tmp/nope")
        with pytest.raises(ValueError, match="distributed"):
            run_sweep(SCENARIO, [1], workers=1, backend="thread",
                      smoke=True, lease_ttl=5.0)

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_sweep(SCENARIO, [1], workers=-1, backend="distributed",
                      smoke=True)

    def test_bad_lease_ttl_rejected_even_on_warm_cache(self, tmp_path):
        """Validation must not depend on cache state: an all-hits
        replay rejects a bad lease_ttl exactly like a cold run."""
        run_sweep(SCENARIO, [1], workers=0, backend="distributed",
                  smoke=True, cache_dir=tmp_path)
        with pytest.raises(ValueError, match="lease_ttl"):
            run_sweep(SCENARIO, [1], workers=0, backend="distributed",
                      smoke=True, cache_dir=tmp_path, lease_ttl=-1.0)


class TestWorkerIdentity:
    def test_default_worker_id_names_host_and_pid(self):
        owner = default_worker_id()
        assert str(os.getpid()) in owner
