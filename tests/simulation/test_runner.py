"""Tests for the repeat-and-average helpers."""

import pytest

from repro.simulation.results import RateSummary, SeriesResult
from repro.simulation.runner import average_rates, average_series


class TestAverageRates:
    def test_averages_each_rate(self):
        def run(seed):
            return RateSummary(
                success_rate=0.2 * seed,
                unavailable_rate=0.1 * seed,
                abuse_rate=0.0,
                total_requests=10,
            )

        averaged = average_rates(run, seeds=[1, 2, 3])
        assert averaged.success_rate == pytest.approx(0.4)
        assert averaged.unavailable_rate == pytest.approx(0.2)
        assert averaged.total_requests == 30

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            average_rates(lambda seed: None, seeds=[])


class TestAverageSeries:
    def test_pointwise_average(self):
        def run(seed):
            return SeriesResult("s", [float(seed), float(seed * 2)])

        averaged = average_series(run, seeds=[1, 3])
        assert averaged.values == [2.0, 4.0]

    def test_length_mismatch_rejected(self):
        def run(seed):
            return SeriesResult("s", [0.0] * seed)

        with pytest.raises(ValueError, match="lengths"):
            average_series(run, seeds=[2, 3])

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            average_series(lambda seed: None, seeds=[])
