"""Tests for the end-to-end delegation engine (Fig. 1 / Fig. 2 flow)."""

import random

import pytest

from repro.core.agent import (
    HonestTrusteeBehavior,
    ResponsibleTrustorBehavior,
    TrusteeAgent,
    TrustorAgent,
)
from repro.core.engine import DelegationEngine, DelegationStatus, run_rounds
from repro.core.environment import EnvironmentAwareUpdater, EnvironmentReading
from repro.core.inference import CharacteristicInferrer
from repro.core.records import OutcomeFactors, UsageRecord
from repro.core.task import Task


def make_trustor(name="alice", responsibility=1.0) -> TrustorAgent:
    return TrustorAgent(
        node_id=name,
        behavior=ResponsibleTrustorBehavior(responsibility=responsibility),
    )


def make_trustee(name="bob", competence=1.0, threshold=0.0,
                 gain=1.0) -> TrusteeAgent:
    return TrusteeAgent(
        node_id=name,
        behavior=HonestTrusteeBehavior(competence=competence, gain=gain),
        default_threshold=threshold,
    )


@pytest.fixture
def task() -> Task:
    return Task("sensing", characteristics=("sensor",))


class TestDelegate:
    def test_success_round(self, task):
        engine = DelegationEngine(rng=random.Random(0))
        trustor = make_trustor()
        trustee = make_trustee(competence=1.0)
        outcome = engine.delegate(trustor, task, [trustee])
        assert outcome.status is DelegationStatus.SUCCESS
        assert outcome.trustee == "bob"
        assert outcome.gain == 1.0

    def test_failure_round(self, task):
        engine = DelegationEngine(rng=random.Random(0))
        trustor = make_trustor()
        trustee = make_trustee(competence=0.0)
        outcome = engine.delegate(trustor, task, [trustee])
        assert outcome.status is DelegationStatus.FAILURE

    def test_no_candidates_unavailable(self, task):
        engine = DelegationEngine()
        outcome = engine.delegate(make_trustor(), task, [])
        assert outcome.status is DelegationStatus.UNAVAILABLE
        assert not outcome.answered

    def test_terminates_in_exactly_one_state(self, task):
        engine = DelegationEngine(rng=random.Random(1))
        trustor = make_trustor(responsibility=0.5)
        trustees = [make_trustee(f"t{i}", competence=0.5) for i in range(3)]
        for _ in range(50):
            outcome = engine.delegate(trustor, task, trustees)
            assert outcome.status in (
                DelegationStatus.SUCCESS,
                DelegationStatus.FAILURE,
                DelegationStatus.UNAVAILABLE,
            )

    def test_trustor_expectation_updates_after_round(self, task):
        engine = DelegationEngine(rng=random.Random(0))
        trustor = make_trustor()
        trustee = make_trustee(competence=1.0, gain=0.5)
        engine.delegate(trustor, task, [trustee])
        assert trustor.store.has_experience("bob", task)

    def test_trustee_logs_usage_after_round(self, task):
        engine = DelegationEngine(rng=random.Random(0))
        trustor = make_trustor(responsibility=1.0)
        trustee = make_trustee()
        engine.delegate(trustor, task, [trustee])
        assert trustee.store.responsible_fraction("alice") == 1.0

    def test_abuse_only_after_acceptance(self, task):
        engine = DelegationEngine(rng=random.Random(0))
        trustor = make_trustor(responsibility=0.0)  # always abusive
        rejecting = make_trustee("strict", threshold=0.9)
        # Prime the trustee's log so the reverse evaluation rejects.
        for _ in range(10):
            rejecting.store.record_usage(
                UsageRecord(trustor="alice", trustee="strict", abusive=True)
            )
        outcome = engine.delegate(trustor, task, [rejecting])
        assert outcome.status is DelegationStatus.UNAVAILABLE
        assert not outcome.abusive
        # No new usage was logged for the refused request.
        assert len(rejecting.store.usage_log("alice")) == 10

    def test_rejection_falls_through_to_next_candidate(self, task):
        engine = DelegationEngine(rng=random.Random(0))
        trustor = make_trustor()
        strict = make_trustee("strict", threshold=0.9, gain=1.0)
        for _ in range(10):
            strict.store.record_usage(
                UsageRecord(trustor="alice", trustee="strict", abusive=True)
            )
        lenient = make_trustee("lenient", threshold=0.0, gain=0.5)
        outcome = engine.delegate(trustor, task, [strict, lenient])
        assert outcome.trustee == "lenient"
        assert outcome.rejections == 1

    def test_trustor_never_delegates_to_itself(self, task):
        engine = DelegationEngine(rng=random.Random(0))
        trustor = make_trustor("dual")
        self_trustee = make_trustee("dual")
        other = make_trustee("other")
        outcome = engine.delegate(trustor, task, [self_trustee, other])
        assert outcome.trustee == "other"


class TestRanking:
    def test_ranks_by_policy_score(self, task):
        engine = DelegationEngine(rng=random.Random(0))
        trustor = make_trustor()
        good = make_trustee("good")
        bad = make_trustee("bad")
        trustor.store.set_expected(
            "good", task,
            OutcomeFactors(success_rate=0.9, gain=1.0, damage=0, cost=0),
        )
        trustor.store.set_expected(
            "bad", task,
            OutcomeFactors(success_rate=0.2, gain=1.0, damage=0, cost=0),
        )
        ranked = engine.rank_candidates(trustor, task, [bad, good])
        assert ranked[0][0].node_id == "good"

    def test_inference_used_for_unseen_task(self):
        engine = DelegationEngine(
            inferrer=CharacteristicInferrer(), rng=random.Random(0)
        )
        trustor = make_trustor()
        trustee = make_trustee()
        gps = Task("gps-history", characteristics=("gps",))
        trustor.store.set_expected(
            "bob", gps,
            OutcomeFactors(success_rate=0.3, gain=0.5, damage=0.1, cost=0.1),
        )
        new_task = Task("new-gps", characteristics=("gps",))
        inferred = engine.expected_factors(trustor, trustee, new_task)
        assert inferred.success_rate == pytest.approx(0.3)
        assert inferred.gain == pytest.approx(0.5)

    def test_without_inferrer_unseen_task_uses_initial(self):
        engine = DelegationEngine(rng=random.Random(0))
        trustor = make_trustor()
        trustee = make_trustee()
        gps = Task("gps-history", characteristics=("gps",))
        trustor.store.set_expected(
            "bob", gps,
            OutcomeFactors(success_rate=0.3, gain=0.5, damage=0.1, cost=0.1),
        )
        new_task = Task("new-gps", characteristics=("gps",))
        factors = engine.expected_factors(trustor, trustee, new_task)
        assert factors == OutcomeFactors.neutral()

    def test_uninferrable_task_falls_back_to_initial(self):
        engine = DelegationEngine(
            inferrer=CharacteristicInferrer(), rng=random.Random(0)
        )
        trustor = make_trustor()
        trustee = make_trustee()
        new_task = Task("audio", characteristics=("audio",))
        factors = engine.expected_factors(trustor, trustee, new_task)
        assert factors == OutcomeFactors.neutral()


class TestEnvironmentIntegration:
    def test_environment_updater_applied(self, task):
        engine = DelegationEngine(
            environment_updater=EnvironmentAwareUpdater(),
            rng=random.Random(0),
        )
        trustor = make_trustor()
        trustee = make_trustee(competence=1.0)
        hostile = EnvironmentReading(trustor_env=0.5, trustee_env=0.5)
        outcome = engine.delegate(trustor, task, [trustee],
                                  environment=hostile)
        assert outcome.status is DelegationStatus.SUCCESS
        factors = trustor.store.expected("bob", task)
        assert 0.0 <= factors.success_rate <= 1.0


class TestRunRounds:
    def test_collects_all_outcomes(self, task):
        engine = DelegationEngine(rng=random.Random(0))
        trustor = make_trustor()
        trustee = make_trustee()
        outcomes = run_rounds(
            engine, [(trustor, task, [trustee])] * 5
        )
        assert len(outcomes) == 5
        assert all(o.answered for o in outcomes)
