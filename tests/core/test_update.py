"""Tests for the forgetting update (Eq. 19-22)."""

import pytest

from repro.core.records import OutcomeFactors
from repro.core.update import ForgettingUpdater, forget


class TestForget:
    def test_formula(self):
        # expected = beta*old + (1-beta)*observed.
        assert forget(1.0, 0.0, 0.9) == pytest.approx(0.9)
        assert forget(0.0, 1.0, 0.9) == pytest.approx(0.1)

    def test_beta_one_keeps_history(self):
        assert forget(0.7, 0.1, 1.0) == 0.7

    def test_beta_zero_replaces_history(self):
        assert forget(0.7, 0.1, 0.0) == pytest.approx(0.1)

    def test_invalid_beta_rejected(self):
        with pytest.raises(ValueError):
            forget(0.5, 0.5, 1.5)

    def test_contraction_toward_observation(self):
        # |new - obs| <= beta * |old - obs| for any inputs.
        old, obs, beta = 0.9, 0.2, 0.6
        new = forget(old, obs, beta)
        assert abs(new - obs) <= beta * abs(old - obs) + 1e-12

    def test_repeated_updates_converge_to_constant_observation(self):
        value = 1.0
        for _ in range(200):
            value = forget(value, 0.3, 0.9)
        assert value == pytest.approx(0.3, abs=1e-6)


class TestForgettingUpdater:
    def test_uniform_constructor(self):
        updater = ForgettingUpdater.uniform(0.4)
        assert updater.beta_success == 0.4
        assert updater.beta_cost == 0.4

    def test_per_factor_betas(self):
        updater = ForgettingUpdater(
            beta_success=1.0, beta_gain=0.0, beta_damage=0.5, beta_cost=0.5
        )
        expected = OutcomeFactors(success_rate=0.5, gain=0.5, damage=0.5,
                                  cost=0.5)
        observed = OutcomeFactors(success_rate=1.0, gain=1.0, damage=1.0,
                                  cost=1.0)
        updated = updater.update(expected, observed)
        assert updated.success_rate == 0.5   # beta 1: frozen
        assert updated.gain == 1.0           # beta 0: replaced
        assert updated.damage == pytest.approx(0.75)

    def test_update_keeps_factors_valid(self):
        updater = ForgettingUpdater.uniform(0.5)
        expected = OutcomeFactors(success_rate=1.0, gain=0.0, damage=0.0,
                                  cost=0.0)
        observed = OutcomeFactors(success_rate=0.0, gain=2.0, damage=3.0,
                                  cost=4.0)
        updated = updater.update(expected, observed)
        assert 0.0 <= updated.success_rate <= 1.0
        assert updated.gain == pytest.approx(1.0)
        assert updated.cost == pytest.approx(2.0)

    def test_invalid_beta_rejected_at_construction(self):
        with pytest.raises(ValueError):
            ForgettingUpdater(beta_success=2.0)

    def test_update_is_convex_blend(self):
        updater = ForgettingUpdater.uniform(0.3)
        expected = OutcomeFactors(success_rate=0.2, gain=0.2, damage=0.2,
                                  cost=0.2)
        observed = OutcomeFactors(success_rate=0.8, gain=0.8, damage=0.8,
                                  cost=0.8)
        updated = updater.update(expected, observed)
        for field in ("success_rate", "gain", "damage", "cost"):
            value = getattr(updated, field)
            assert 0.2 <= value <= 0.8
