"""Tests for agent behaviour profiles."""

import random

import pytest

from repro.core.agent import (
    DishonestTrusteeBehavior,
    HonestTrusteeBehavior,
    ResponsibleTrustorBehavior,
    TrusteeAgent,
    TrustorAgent,
)
from repro.core.records import DelegationRecord
from repro.core.task import Task


class TestHonestTrustee:
    def test_success_frequency_tracks_competence(self):
        behavior = HonestTrusteeBehavior(competence=0.7, gain=1.0, damage=0.5)
        rng = random.Random(0)
        task = Task("t", characteristics=("a",))
        outcomes = [behavior.perform(task, rng) for _ in range(2000)]
        rate = sum(1 for o in outcomes if o.succeeded) / len(outcomes)
        assert rate == pytest.approx(0.7, abs=0.04)

    def test_gain_only_on_success(self):
        behavior = HonestTrusteeBehavior(competence=1.0, gain=0.8)
        result = behavior.perform(Task("t"), random.Random(0))
        assert result.succeeded and result.gain == 0.8 and result.damage == 0

    def test_damage_only_on_failure(self):
        behavior = HonestTrusteeBehavior(competence=0.0, gain=0.8, damage=0.4)
        result = behavior.perform(Task("t"), random.Random(0))
        assert not result.succeeded
        assert result.gain == 0.0 and result.damage == 0.4

    def test_cost_always_paid(self):
        for competence in (0.0, 1.0):
            behavior = HonestTrusteeBehavior(competence=competence, cost=0.3)
            result = behavior.perform(Task("t"), random.Random(1))
            assert result.cost == 0.3

    def test_invalid_competence_rejected(self):
        with pytest.raises(ValueError):
            HonestTrusteeBehavior(competence=1.2)


class TestDishonestTrustee:
    def test_targets_bad_characteristics(self):
        behavior = DishonestTrusteeBehavior(
            base_competence=0.9, malicious_competence=0.1,
            bad_characteristics={"image"},
        )
        clean = Task("clean", characteristics=("gps",))
        tainted = Task("tainted", characteristics=("gps", "image"))
        assert behavior.effective_competence(clean) == 0.9
        assert behavior.effective_competence(tainted) == 0.1

    def test_cost_inflation_applied(self):
        behavior = DishonestTrusteeBehavior(cost=0.1, cost_inflation=0.5)
        result = behavior.perform(Task("t"), random.Random(0))
        assert result.cost == pytest.approx(0.6)

    def test_malice_lowers_success_frequency(self):
        behavior = DishonestTrusteeBehavior(
            base_competence=0.9, malicious_competence=0.1,
            bad_characteristics={"image"},
        )
        rng = random.Random(3)
        tainted = Task("t", characteristics=("image",))
        successes = sum(
            1 for _ in range(1000)
            if behavior.perform(tainted, rng).succeeded
        )
        assert successes / 1000 == pytest.approx(0.1, abs=0.04)


class TestTrustorBehavior:
    def test_responsibility_frequency(self):
        behavior = ResponsibleTrustorBehavior(responsibility=0.25)
        rng = random.Random(0)
        responsible = sum(
            1 for _ in range(2000) if behavior.uses_responsibly(rng)
        )
        assert responsible / 2000 == pytest.approx(0.25, abs=0.04)


class TestAgents:
    def test_trustor_gets_a_store(self):
        agent = TrustorAgent(
            node_id="alice",
            behavior=ResponsibleTrustorBehavior(responsibility=1.0),
        )
        assert agent.store.owner == "alice"

    def test_trustor_record_result_updates_store(self):
        agent = TrustorAgent(
            node_id="alice",
            behavior=ResponsibleTrustorBehavior(responsibility=1.0),
        )
        task = Task("t", characteristics=("a",))
        agent.record_result(
            DelegationRecord(trustor="alice", trustee="bob",
                             task_name="t", succeeded=True, gain=0.5),
            task,
        )
        assert agent.store.has_experience("bob", task)

    def test_trustee_threshold_per_task(self):
        agent = TrusteeAgent(
            node_id="bob",
            behavior=HonestTrusteeBehavior(competence=1.0),
            thresholds={"camera": 0.6},
            default_threshold=0.2,
        )
        assert agent.threshold_for(Task("camera")) == 0.6
        assert agent.threshold_for(Task("other")) == 0.2

    def test_trustee_perform_delegates_to_behavior(self):
        agent = TrusteeAgent(
            node_id="bob", behavior=HonestTrusteeBehavior(competence=1.0)
        )
        result = agent.perform(Task("t"), random.Random(0))
        assert result.succeeded
