"""Tests for the per-agent trust store."""

import pytest

from repro.core.records import DelegationRecord, OutcomeFactors, UsageRecord
from repro.core.store import TrustStore
from repro.core.task import Task
from repro.core.update import ForgettingUpdater


@pytest.fixture
def store() -> TrustStore:
    return TrustStore(owner="alice", updater=ForgettingUpdater.uniform(0.5))


@pytest.fixture
def task() -> Task:
    return Task("camera", characteristics=("image",))


class TestExpectations:
    def test_unseen_pair_returns_initial(self, store, task):
        factors = store.expected("bob", task)
        assert factors == OutcomeFactors.neutral()

    def test_custom_initial(self, task):
        initial = OutcomeFactors(success_rate=0.5, gain=0.5, damage=0.5,
                                 cost=0.5)
        store = TrustStore(owner="alice", initial=initial)
        assert store.expected("bob", task) == initial

    def test_has_experience_only_after_recording(self, store, task):
        assert not store.has_experience("bob", task)
        store.record_delegation(
            DelegationRecord(trustor="alice", trustee="bob",
                             task_name=task.name, succeeded=True, gain=0.5),
            task,
        )
        assert store.has_experience("bob", task)

    def test_set_expected_overwrites(self, store, task):
        factors = OutcomeFactors(success_rate=0.25, gain=1, damage=0, cost=0)
        store.set_expected("bob", task, factors)
        assert store.expected("bob", task) == factors

    def test_record_delegation_blends_with_updater(self, store, task):
        store.set_expected(
            "bob", task,
            OutcomeFactors(success_rate=1.0, gain=1.0, damage=0.0, cost=0.0),
        )
        refreshed = store.record_delegation(
            DelegationRecord(trustor="alice", trustee="bob",
                             task_name=task.name, succeeded=False,
                             damage=1.0),
            task,
        )
        # beta 0.5: success 0.5*1 + 0.5*0, damage 0.5*0 + 0.5*1.
        assert refreshed.success_rate == pytest.approx(0.5)
        assert refreshed.damage == pytest.approx(0.5)

    def test_expectations_are_per_task(self, store):
        task_a = Task("a", characteristics=("x",))
        task_b = Task("b", characteristics=("y",))
        store.set_expected(
            "bob", task_a,
            OutcomeFactors(success_rate=0.1, gain=0, damage=0, cost=0),
        )
        assert store.expected("bob", task_b) == OutcomeFactors.neutral()

    def test_counterparts_deduplicated(self, store, task):
        other = Task("other", characteristics=("y",))
        store.set_expected("bob", task, OutcomeFactors.neutral())
        store.set_expected("bob", other, OutcomeFactors.neutral())
        store.set_expected("carol", task, OutcomeFactors.neutral())
        assert sorted(store.counterparts()) == ["bob", "carol"]

    def test_len_counts_pairs(self, store, task):
        assert len(store) == 0
        store.set_expected("bob", task, OutcomeFactors.neutral())
        assert len(store) == 1


class TestHistory:
    def test_history_accumulates(self, store, task):
        for succeeded in (True, False, True):
            store.record_delegation(
                DelegationRecord(trustor="alice", trustee="bob",
                                 task_name=task.name, succeeded=succeeded),
                task,
            )
        history = store.history("bob", task)
        assert [r.succeeded for r in history] == [True, False, True]

    def test_history_is_a_copy(self, store, task):
        store.record_delegation(
            DelegationRecord(trustor="alice", trustee="bob",
                             task_name=task.name, succeeded=True),
            task,
        )
        store.history("bob", task).clear()
        assert len(store.history("bob", task)) == 1

    def test_experienced_tasks_lists_eq3_pool(self, store):
        task_a = Task("a", characteristics=("x",))
        task_b = Task("b", characteristics=("y",))
        store.set_expected("bob", task_a, OutcomeFactors.neutral())
        store.set_expected("bob", task_b, OutcomeFactors.neutral())
        names = {t.name for t in store.experienced_tasks("bob")}
        assert names == {"a", "b"}
        assert store.experienced_tasks("stranger") == []


class TestUsageLog:
    def test_responsible_fraction_none_for_stranger(self, store):
        assert store.responsible_fraction("mallory") is None

    def test_responsible_fraction(self, store):
        for abusive in (False, False, True, False):
            store.record_usage(
                UsageRecord(trustor="mallory", trustee="alice",
                            abusive=abusive)
            )
        assert store.responsible_fraction("mallory") == pytest.approx(0.75)

    def test_usage_log_is_per_trustor(self, store):
        store.record_usage(
            UsageRecord(trustor="mallory", trustee="alice", abusive=True)
        )
        assert store.usage_log("bob") == []
        assert len(store.usage_log("mallory")) == 1
