"""Tests for goals and result alignment (Sections 3.2-3.4)."""

import pytest

from repro.core.goal import (
    ActualResult,
    ExpectedResult,
    Goal,
    alignment,
    revise_expectation,
)
from repro.core.records import OutcomeFactors


@pytest.fixture
def goal() -> Goal:
    return Goal(
        "monitor-traffic",
        required=("gps-track", "congestion-level"),
        tolerated=("timestamp",),
    )


class TestGoal:
    def test_requires_at_least_one_outcome(self):
        with pytest.raises(ValueError):
            Goal("empty", required=())

    def test_required_tolerated_disjoint(self):
        with pytest.raises(ValueError, match="both required and tolerated"):
            Goal("g", required=("a",), tolerated=("a",))

    def test_accepts_required_and_tolerated(self, goal):
        assert goal.accepts(("gps-track", "timestamp"))

    def test_rejects_unwanted(self, goal):
        assert not goal.accepts(("gps-track", "audio-recording"))


class TestExpectedResult:
    def test_serves_when_covering_and_admitted(self, goal):
        expected = ExpectedResult(
            ("gps-track", "congestion-level", "timestamp")
        )
        assert expected.serves(goal)

    def test_does_not_serve_with_missing_required(self, goal):
        assert not ExpectedResult(("gps-track",)).serves(goal)

    def test_does_not_serve_with_unwanted_promise(self, goal):
        expected = ExpectedResult(
            ("gps-track", "congestion-level", "audio-recording")
        )
        assert not expected.serves(goal)


class TestAlignment:
    def test_fulfilled(self, goal):
        result = ActualResult(("gps-track", "congestion-level"))
        outcome = alignment(goal, result)
        assert outcome.fulfilled
        assert outcome.coverage == 1.0

    def test_missing_outcomes(self, goal):
        outcome = alignment(goal, ActualResult(("gps-track",)))
        assert outcome.missing == frozenset(("congestion-level",))
        assert outcome.coverage == pytest.approx(0.5)
        assert not outcome.fulfilled

    def test_side_effects_detected(self, goal):
        result = ActualResult(
            ("gps-track", "congestion-level", "audio-recording")
        )
        outcome = alignment(goal, result)
        assert outcome.side_effects == frozenset(("audio-recording",))
        assert not outcome.fulfilled

    def test_tolerated_not_a_side_effect(self, goal):
        result = ActualResult(
            ("gps-track", "congestion-level", "timestamp")
        )
        assert alignment(goal, result).fulfilled

    def test_empty_actual_result(self, goal):
        outcome = alignment(goal, ActualResult(()))
        assert outcome.coverage == 0.0
        assert outcome.missing == goal.required


class TestRevision:
    def _expected(self):
        return OutcomeFactors(success_rate=0.8, gain=1.0, damage=0.2,
                              cost=0.1)

    def test_full_achievement_no_change(self, goal):
        outcome = alignment(
            goal, ActualResult(("gps-track", "congestion-level"))
        )
        revised = revise_expectation(self._expected(), outcome)
        assert revised == self._expected()

    def test_missing_outcomes_scale_gain(self, goal):
        outcome = alignment(goal, ActualResult(("gps-track",)))
        revised = revise_expectation(self._expected(), outcome)
        assert revised.gain == pytest.approx(0.5)
        assert revised.damage == pytest.approx(0.2)

    def test_side_effects_raise_damage(self, goal):
        outcome = alignment(
            goal,
            ActualResult(("gps-track", "congestion-level",
                          "audio-recording", "location-leak")),
        )
        revised = revise_expectation(self._expected(), outcome,
                                     side_effect_penalty=0.3)
        assert revised.damage == pytest.approx(0.2 + 2 * 0.3)

    def test_success_rate_and_cost_untouched(self, goal):
        outcome = alignment(goal, ActualResult(()))
        revised = revise_expectation(self._expected(), outcome)
        assert revised.success_rate == 0.8
        assert revised.cost == 0.1

    def test_negative_penalty_rejected(self, goal):
        outcome = alignment(goal, ActualResult(("gps-track",)))
        with pytest.raises(ValueError):
            revise_expectation(self._expected(), outcome,
                               side_effect_penalty=-0.1)
