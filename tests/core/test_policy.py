"""Tests for trustee-selection policies (the Section 5.6 strategies)."""

import pytest

from repro.core.policy import (
    GainOnlyPolicy,
    NetProfitPolicy,
    SuccessRatePolicy,
)
from repro.core.records import OutcomeFactors


def factors(s, g=0.0, d=0.0, c=0.0) -> OutcomeFactors:
    return OutcomeFactors(success_rate=s, gain=g, damage=d, cost=c)


class TestSuccessRatePolicy:
    def test_score_is_success_rate(self):
        assert SuccessRatePolicy().score(factors(0.7, g=5)) == 0.7

    def test_ignores_stakes(self):
        # Strategy 1 blindness: prefers high S even with ruinous damage.
        policy = SuccessRatePolicy()
        risky = factors(0.9, g=0.1, d=1.0, c=1.0)
        safe = factors(0.8, g=1.0, d=0.0, c=0.0)
        chosen = policy.select([("risky", risky), ("safe", safe)])
        assert chosen[0] == "risky"


class TestNetProfitPolicy:
    def test_score_is_net_profit(self):
        f = factors(0.8, g=1.0, d=0.5, c=0.2)
        assert NetProfitPolicy().score(f) == pytest.approx(f.net_profit())

    def test_prefers_profitable_over_reliable(self):
        policy = NetProfitPolicy()
        reliable_poor = factors(0.99, g=0.05, c=0.2)
        decent_rich = factors(0.7, g=1.0, c=0.0)
        chosen = policy.select([
            ("reliable", reliable_poor), ("rich", decent_rich),
        ])
        assert chosen[0] == "rich"


class TestGainOnlyPolicy:
    def test_blind_to_cost(self):
        # The Fig. 14 baseline keeps choosing the expensive attacker.
        policy = GainOnlyPolicy()
        attacker = factors(1.0, g=1.0, c=0.99)
        honest = factors(1.0, g=0.9, c=0.05)
        chosen = policy.select([("attacker", attacker), ("honest", honest)])
        assert chosen[0] == "attacker"


class TestSelect:
    def test_empty_candidates(self):
        assert NetProfitPolicy().select([]) is None

    def test_returns_score(self):
        chosen = SuccessRatePolicy().select([("a", factors(0.6))])
        assert chosen == ("a", 0.6)

    def test_tie_break_is_first_in_order(self):
        chosen = SuccessRatePolicy().select([
            ("first", factors(0.5)), ("second", factors(0.5)),
        ])
        assert chosen[0] == "first"

    def test_accepts_generator(self):
        pairs = (("n%d" % i, factors(i / 10.0)) for i in range(5))
        chosen = SuccessRatePolicy().select(pairs)
        assert chosen[0] == "n4"
