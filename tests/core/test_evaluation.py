"""Tests for mutual evaluation (Eq. 1, 18, 23, 24 and the Fig. 2 flow)."""

import pytest

from repro.core.evaluation import (
    MutualEvaluator,
    ReverseEvaluator,
    net_profit,
    post_evaluate,
    prefers_delegation,
    select_best_candidate,
)
from repro.core.records import OutcomeFactors, UsageRecord
from repro.core.store import TrustStore
from repro.core.task import Task


def factors(s, g=1.0, d=0.0, c=0.0) -> OutcomeFactors:
    return OutcomeFactors(success_rate=s, gain=g, damage=d, cost=c)


class TestPostEvaluate:
    def test_best_case_maps_to_one(self):
        assert post_evaluate(factors(1.0, g=1.0, d=0.0, c=0.0)).value == 1.0

    def test_worst_case_maps_to_zero(self):
        value = post_evaluate(
            OutcomeFactors(success_rate=0.0, gain=0.0, damage=1.0, cost=1.0)
        ).value
        assert value == pytest.approx(0.0)

    def test_higher_success_rate_gives_higher_trust(self):
        low = post_evaluate(factors(0.3, g=1.0, d=0.5, c=0.1)).value
        high = post_evaluate(factors(0.9, g=1.0, d=0.5, c=0.1)).value
        assert high > low

    def test_cost_decreases_trust(self):
        cheap = post_evaluate(factors(0.8, c=0.0)).value
        pricey = post_evaluate(factors(0.8, c=0.5)).value
        assert cheap > pricey


class TestSelection:
    def test_select_best_candidate_maximizes_profit(self):
        result = select_best_candidate([
            ("a", factors(0.9, g=0.1)),    # profit 0.09
            ("b", factors(0.5, g=1.0)),    # profit 0.5
            ("c", factors(0.99, g=0.2)),   # profit 0.198
        ])
        assert result is not None
        assert result[0] == "b"
        assert result[1] == pytest.approx(0.5)

    def test_select_best_candidate_empty(self):
        assert select_best_candidate([]) is None

    def test_tie_breaks_to_first(self):
        result = select_best_candidate([
            ("first", factors(0.5)), ("second", factors(0.5)),
        ])
        assert result[0] == "first"

    def test_net_profit_helper_matches_method(self):
        f = factors(0.7, g=0.9, d=0.3, c=0.2)
        assert net_profit(f) == pytest.approx(f.net_profit())


class TestSelfDelegation:
    def test_prefers_delegation_when_trustee_better(self):
        # Eq. 24: delegate only on strictly better expected profit.
        toward_self = factors(0.9, g=0.5, c=0.3)    # 0.15
        toward_trustee = factors(0.9, g=1.0, c=0.3)  # 0.6
        assert prefers_delegation(toward_trustee, toward_self)

    def test_keeps_task_when_self_better(self):
        toward_self = factors(1.0, g=1.0)
        toward_trustee = factors(0.5, g=1.0)
        assert not prefers_delegation(toward_trustee, toward_self)

    def test_equal_profit_means_do_it_yourself(self):
        same = factors(0.8, g=1.0)
        assert not prefers_delegation(same, same)


class TestReverseEvaluator:
    def test_stranger_gets_default_trust(self):
        store = TrustStore(owner="bob")
        evaluator = ReverseEvaluator(threshold=0.5, default_trust=1.0)
        assert evaluator.reverse_trust(store, "alice").value == 1.0
        assert evaluator.accepts(store, "alice")

    def test_abusive_trustor_rejected(self):
        store = TrustStore(owner="bob")
        for _ in range(10):
            store.record_usage(
                UsageRecord(trustor="mallory", trustee="bob", abusive=True)
            )
        evaluator = ReverseEvaluator(threshold=0.3)
        assert not evaluator.accepts(store, "mallory")

    def test_responsible_trustor_accepted(self):
        store = TrustStore(owner="bob")
        for index in range(10):
            store.record_usage(
                UsageRecord(trustor="alice", trustee="bob",
                            abusive=index == 0)  # 90% responsible
            )
        evaluator = ReverseEvaluator(threshold=0.6)
        assert evaluator.accepts(store, "alice")

    def test_threshold_zero_accepts_everyone(self):
        store = TrustStore(owner="bob")
        for _ in range(5):
            store.record_usage(
                UsageRecord(trustor="mallory", trustee="bob", abusive=True)
            )
        assert ReverseEvaluator(threshold=0.0).accepts(store, "mallory")

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            ReverseEvaluator(threshold=1.5)


class TestMutualEvaluator:
    def _evaluator(self, scores, rejectors=()):
        return MutualEvaluator(
            pre_evaluate=lambda candidate, task: scores[candidate],
            reverse_gate=lambda candidate, trustor, task:
                candidate not in rejectors,
        )

    def test_rank_candidates_descending(self):
        evaluator = self._evaluator({"a": 0.1, "b": 0.9, "c": 0.5})
        task = Task("t")
        ranked = evaluator.rank_candidates("x", task, ["a", "b", "c"])
        assert [node for node, _ in ranked] == ["b", "c", "a"]

    def test_best_accepting_candidate_wins(self):
        evaluator = self._evaluator({"a": 0.1, "b": 0.9, "c": 0.5})
        task = Task("t")
        found = evaluator.find_trustee("x", task, ["a", "b", "c"])
        assert found == ("b", 0.9)

    def test_rejection_falls_through_to_next(self):
        # The Fig. 2 flow: trustee 1 refuses, trustee 2 accepts.
        evaluator = self._evaluator(
            {"a": 0.1, "b": 0.9, "c": 0.5}, rejectors={"b"}
        )
        task = Task("t")
        found = evaluator.find_trustee("x", task, ["a", "b", "c"])
        assert found == ("c", 0.5)

    def test_all_reject_means_unavailable(self):
        evaluator = self._evaluator(
            {"a": 0.1, "b": 0.9}, rejectors={"a", "b"}
        )
        assert evaluator.find_trustee("x", Task("t"), ["a", "b"]) is None

    def test_trustor_excluded_from_candidates(self):
        evaluator = self._evaluator({"x": 1.0, "a": 0.5})
        found = evaluator.find_trustee("x", Task("t"), ["x", "a"])
        assert found == ("a", 0.5)
