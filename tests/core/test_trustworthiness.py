"""Tests for trust values and the N[.] normalization of Eq. 18."""

import pytest

from repro.core.trustworthiness import TrustValue, clamp01, normalize_net_profit


class TestTrustValue:
    def test_range_enforced(self):
        with pytest.raises(ValueError):
            TrustValue(1.01)
        with pytest.raises(ValueError):
            TrustValue(-0.01)

    def test_float_conversion(self):
        assert float(TrustValue(0.42)) == pytest.approx(0.42)

    def test_derived_keeps_magnitude_and_clears_direct(self):
        direct = TrustValue(0.7, direct=True)
        derived = direct.derived()
        assert derived.value == direct.value
        assert not derived.direct

    def test_meets_threshold_inclusive(self):
        assert TrustValue(0.5).meets(0.5)
        assert not TrustValue(0.49).meets(0.5)


class TestClamp:
    @pytest.mark.parametrize("raw,expected", [
        (-1.0, 0.0), (0.0, 0.0), (0.5, 0.5), (1.0, 1.0), (2.0, 1.0),
    ])
    def test_clamp01(self, raw, expected):
        assert clamp01(raw) == expected


class TestNormalizeNetProfit:
    def test_maximum_profit_maps_to_one(self):
        # raw range with unit bounds: [-2, 1].
        assert normalize_net_profit(1.0) == pytest.approx(1.0)

    def test_minimum_profit_maps_to_zero(self):
        assert normalize_net_profit(-2.0) == pytest.approx(0.0)

    def test_zero_profit_maps_to_two_thirds(self):
        assert normalize_net_profit(0.0) == pytest.approx(2.0 / 3.0)

    def test_monotone(self):
        values = [normalize_net_profit(raw / 10.0) for raw in range(-20, 11)]
        assert values == sorted(values)

    def test_out_of_range_saturates(self):
        assert normalize_net_profit(5.0) == 1.0
        assert normalize_net_profit(-5.0) == 0.0

    def test_custom_bounds(self):
        # gain up to 10, damage up to 2, cost up to 3 -> raw in [-5, 10].
        assert normalize_net_profit(10.0, 10, 2, 3) == pytest.approx(1.0)
        assert normalize_net_profit(-5.0, 10, 2, 3) == pytest.approx(0.0)
        assert normalize_net_profit(2.5, 10, 2, 3) == pytest.approx(0.5)

    def test_degenerate_bounds_rejected(self):
        with pytest.raises(ValueError):
            normalize_net_profit(0.0, gain_max=-3.0, damage_max=1.0,
                                 cost_max=1.0)
