"""Tests for characteristic-based trust inference (Eq. 2-4, Fig. 3)."""

import pytest

from repro.core.inference import (
    CharacteristicInferrer,
    InferenceError,
    infer_or_default,
)
from repro.core.task import Task


@pytest.fixture
def inferrer() -> CharacteristicInferrer:
    return CharacteristicInferrer()


class TestCanInfer:
    def test_covered_task(self, inferrer, gps_task, image_task, traffic_task):
        assert inferrer.can_infer(traffic_task, [gps_task, image_task])

    def test_uncovered_task(self, inferrer, gps_task, traffic_task):
        assert not inferrer.can_infer(traffic_task, [gps_task])

    def test_empty_experience(self, inferrer, traffic_task):
        assert not inferrer.can_infer(traffic_task, [])


class TestInfer:
    def test_single_characteristic_passthrough(self, inferrer, gps_task):
        new = Task("new-gps", characteristics=("gps",))
        inferred = inferrer.infer(new, [(gps_task, 0.8)])
        assert inferred.value == pytest.approx(0.8)
        assert not inferred.direct

    def test_two_characteristics_average(self, inferrer, gps_task, image_task,
                                         traffic_task):
        # Eq. 4 with uniform weights: mean of the two estimates.
        inferred = inferrer.infer(
            traffic_task, [(gps_task, 0.9), (image_task, 0.5)]
        )
        assert inferred.value == pytest.approx(0.7)

    def test_weighted_new_task(self, inferrer, gps_task, image_task):
        new = Task("t", characteristics=("gps", "image"),
                   weights={"gps": 3.0, "image": 1.0})
        inferred = inferrer.infer(new, [(gps_task, 1.0), (image_task, 0.0)])
        assert inferred.value == pytest.approx(0.75)

    def test_multiple_supporting_tasks_weighted_average(self, inferrer):
        # Two experienced tasks contain "gps" with different weights.
        heavy = Task("heavy", characteristics=("gps", "other"),
                     weights={"gps": 3.0, "other": 1.0})   # w=0.75
        light = Task("light", characteristics=("gps", "misc"),
                     weights={"gps": 1.0, "misc": 3.0})    # w=0.25
        new = Task("new", characteristics=("gps",))
        inferred = inferrer.infer(new, [(heavy, 0.8), (light, 0.4)])
        expected = (0.75 * 0.8 + 0.25 * 0.4) / (0.75 + 0.25)
        assert inferred.value == pytest.approx(expected)

    def test_identity_when_all_inputs_equal(self, inferrer, gps_task,
                                            image_task, traffic_task):
        inferred = inferrer.infer(
            traffic_task, [(gps_task, 0.6), (image_task, 0.6)]
        )
        assert inferred.value == pytest.approx(0.6)

    def test_bounded_by_input_range(self, inferrer, gps_task, image_task,
                                    traffic_task):
        inferred = inferrer.infer(
            traffic_task, [(gps_task, 0.2), (image_task, 0.9)]
        )
        assert 0.2 <= inferred.value <= 0.9

    def test_missing_characteristic_raises(self, inferrer, gps_task,
                                           traffic_task):
        with pytest.raises(InferenceError, match="image"):
            inferrer.infer(traffic_task, [(gps_task, 0.9)])

    def test_empty_task_raises(self, inferrer, gps_task):
        with pytest.raises(InferenceError, match="no characteristics"):
            inferrer.infer(Task("empty"), [(gps_task, 0.9)])

    def test_irrelevant_tasks_ignored(self, inferrer, gps_task):
        unrelated = Task("audio", characteristics=("audio",))
        new = Task("new", characteristics=("gps",))
        inferred = inferrer.infer(new, [(gps_task, 0.7), (unrelated, 0.0)])
        assert inferred.value == pytest.approx(0.7)


class TestExplain:
    def test_explain_lists_supporting_tasks(self, inferrer, gps_task,
                                            image_task, traffic_task):
        breakdown = inferrer.explain(
            traffic_task, [(gps_task, 0.9), (image_task, 0.5)]
        )
        assert breakdown["gps"].supporting_tasks == ("gps-task",)
        assert breakdown["image"].estimate == pytest.approx(0.5)


class TestInferOrDefault:
    def test_returns_inference_when_possible(self, inferrer, gps_task):
        new = Task("new", characteristics=("gps",))
        result = infer_or_default(inferrer, new, [(gps_task, 0.8)])
        assert result is not None
        assert result.value == pytest.approx(0.8)

    def test_returns_none_without_default(self, inferrer, traffic_task):
        assert infer_or_default(inferrer, traffic_task, []) is None

    def test_returns_default_when_uncoverable(self, inferrer, traffic_task):
        result = infer_or_default(inferrer, traffic_task, [], default=0.5)
        assert result.value == 0.5
        assert not result.direct
