"""Tests for outcome records (Section 4.4's S/G/D/C aspects)."""

import pytest

from repro.core.records import DelegationRecord, OutcomeFactors, UsageRecord


class TestOutcomeFactors:
    def test_net_profit_formula(self):
        # Eq. 23 objective: S*G - (1-S)*D - C.
        factors = OutcomeFactors(
            success_rate=0.8, gain=1.0, damage=0.5, cost=0.2
        )
        assert factors.net_profit() == pytest.approx(
            0.8 * 1.0 - 0.2 * 0.5 - 0.2
        )

    def test_certain_success_profit_is_gain_minus_cost(self):
        factors = OutcomeFactors(success_rate=1.0, gain=0.7, damage=0.9,
                                 cost=0.1)
        assert factors.net_profit() == pytest.approx(0.6)

    def test_certain_failure_profit_is_negative(self):
        factors = OutcomeFactors(success_rate=0.0, gain=1.0, damage=0.5,
                                 cost=0.1)
        assert factors.net_profit() == pytest.approx(-0.6)

    def test_success_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            OutcomeFactors(success_rate=1.5, gain=0, damage=0, cost=0)
        with pytest.raises(ValueError):
            OutcomeFactors(success_rate=-0.1, gain=0, damage=0, cost=0)

    def test_negative_magnitudes_rejected(self):
        for field in ("gain", "damage", "cost"):
            kwargs = dict(success_rate=0.5, gain=0.0, damage=0.0, cost=0.0)
            kwargs[field] = -0.01
            with pytest.raises(ValueError):
                OutcomeFactors(**kwargs)

    def test_with_success_rate_replaces_only_that_field(self):
        factors = OutcomeFactors(success_rate=0.5, gain=1, damage=2, cost=3)
        updated = factors.with_success_rate(0.9)
        assert updated.success_rate == 0.9
        assert (updated.gain, updated.damage, updated.cost) == (1, 2, 3)

    def test_neutral_is_profitless(self):
        assert OutcomeFactors.neutral().net_profit() == 0.0

    def test_frozen(self):
        factors = OutcomeFactors(success_rate=0.5, gain=0, damage=0, cost=0)
        with pytest.raises(AttributeError):
            factors.gain = 1.0


class TestDelegationRecord:
    def test_observed_factors_on_success(self):
        record = DelegationRecord(
            trustor="x", trustee="y", task_name="t",
            succeeded=True, gain=0.6, damage=0.0, cost=0.1,
        )
        observed = record.observed_factors()
        assert observed.success_rate == 1.0
        assert observed.gain == 0.6

    def test_observed_factors_on_failure(self):
        record = DelegationRecord(
            trustor="x", trustee="y", task_name="t",
            succeeded=False, damage=0.4,
        )
        observed = record.observed_factors()
        assert observed.success_rate == 0.0
        assert observed.damage == 0.4

    def test_environment_must_be_positive(self):
        with pytest.raises(ValueError):
            DelegationRecord(trustor="x", trustee="y", task_name="t",
                             succeeded=True, environment=0.0)

    def test_environment_above_one_rejected(self):
        with pytest.raises(ValueError):
            DelegationRecord(trustor="x", trustee="y", task_name="t",
                             succeeded=True, environment=1.2)

    def test_environment_none_allowed(self):
        record = DelegationRecord(trustor="x", trustee="y", task_name="t",
                                  succeeded=True)
        assert record.environment is None


class TestUsageRecord:
    def test_responsible_is_inverse_of_abusive(self):
        assert UsageRecord(trustor="x", trustee="y", abusive=False).responsible
        assert not UsageRecord(trustor="x", trustee="y", abusive=True).responsible
