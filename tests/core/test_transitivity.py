"""Tests for restricted trust transitivity (Eq. 5-17)."""

import pytest

from repro.core.task import Task
from repro.core.transitivity import (
    MappingKnowledge,
    TransitivityMode,
    TrustTransitivity,
    combine_chain,
    combine_two_sided,
    traditional_chain,
)


class TestCombiner:
    def test_eq7_formula(self):
        # t1*t2 + (1-t1)(1-t2).
        assert combine_two_sided(0.9, 0.8) == pytest.approx(
            0.9 * 0.8 + 0.1 * 0.2
        )

    def test_symmetry(self):
        assert combine_two_sided(0.3, 0.7) == pytest.approx(
            combine_two_sided(0.7, 0.3)
        )

    def test_full_trust_is_identity(self):
        for t in (0.0, 0.25, 0.5, 1.0):
            assert combine_two_sided(1.0, t) == pytest.approx(t)

    def test_zero_trust_inverts(self):
        # Mistrusted recommender + its misjudgment: (1-0)(1-t).
        for t in (0.0, 0.25, 1.0):
            assert combine_two_sided(0.0, t) == pytest.approx(1.0 - t)

    def test_half_is_absorbing(self):
        for t in (0.0, 0.3, 1.0):
            assert combine_two_sided(0.5, t) == pytest.approx(0.5)

    def test_range_preserved(self):
        for t1 in (0.0, 0.2, 0.5, 0.8, 1.0):
            for t2 in (0.0, 0.3, 0.6, 1.0):
                assert 0.0 <= combine_two_sided(t1, t2) <= 1.0

    def test_exceeds_naive_product(self):
        # The neglected (1-t1)(1-t2) term makes Eq. 7 >= Eq. 5.
        for t1 in (0.1, 0.5, 0.9):
            for t2 in (0.2, 0.6, 0.95):
                assert combine_two_sided(t1, t2) >= t1 * t2

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            combine_two_sided(1.2, 0.5)


class TestChains:
    def test_empty_chain_is_full_trust(self):
        assert combine_chain([]) == 1.0
        assert traditional_chain([]) == 1.0

    def test_single_hop_passthrough(self):
        assert combine_chain([0.8]) == pytest.approx(0.8)
        assert traditional_chain([0.8]) == pytest.approx(0.8)

    def test_traditional_chain_is_product(self):
        assert traditional_chain([0.9, 0.8, 0.5]) == pytest.approx(0.36)

    def test_combine_chain_two_hops_matches_eq7(self):
        assert combine_chain([0.9, 0.8]) == pytest.approx(
            combine_two_sided(0.9, 0.8)
        )


def _simple_knowledge() -> MappingKnowledge:
    """Alice -> Bob -> Carlos, same task type (Fig. 4's admissible case)."""
    knowledge = MappingKnowledge()
    task = Task("type1", characteristics=("t1",))
    knowledge.add_experience("alice", "bob", task, 0.9)
    knowledge.add_experience("bob", "carlos", task, 0.8)
    return knowledge


class TestTraditional:
    def test_direct_and_two_hop_found(self):
        knowledge = _simple_knowledge()
        engine = TrustTransitivity(knowledge)
        task = Task("type1", characteristics=("t1",))
        found = engine.traditional("alice", task)
        assert found["bob"].value == pytest.approx(0.9)
        assert found["carlos"].value == pytest.approx(0.72)  # Eq. 5 product

    def test_task_name_must_match_exactly(self):
        knowledge = _simple_knowledge()
        engine = TrustTransitivity(knowledge)
        other = Task("type2", characteristics=("t1",))
        assert engine.traditional("alice", other) == {}

    def test_direct_experience_marked_direct(self):
        knowledge = _simple_knowledge()
        engine = TrustTransitivity(knowledge)
        task = Task("type1", characteristics=("t1",))
        found = engine.traditional("alice", task)
        assert found["bob"].direct
        assert not found["carlos"].direct

    def test_max_depth_limits_search(self):
        knowledge = _simple_knowledge()
        engine = TrustTransitivity(knowledge, max_depth=1)
        task = Task("type1", characteristics=("t1",))
        found = engine.traditional("alice", task)
        assert "bob" in found
        assert "carlos" not in found

    def test_inquiries_recorded(self):
        knowledge = _simple_knowledge()
        engine = TrustTransitivity(knowledge)
        inquiries = set()
        engine.traditional(
            "alice", Task("type1", characteristics=("t1",)), inquiries
        )
        assert inquiries == {"bob", "carlos"}


class TestConservative:
    def test_same_type_two_hop_uses_eq7(self):
        knowledge = _simple_knowledge()
        engine = TrustTransitivity(
            knowledge, omega_recommend=0.5, omega_execute=0.5
        )
        task = Task("type1", characteristics=("t1",))
        found = engine.conservative("alice", task)
        assert found["carlos"].value == pytest.approx(
            combine_two_sided(0.9, 0.8)
        )

    def test_omega_gate_blocks_weak_recommender(self):
        knowledge = MappingKnowledge()
        task = Task("type1", characteristics=("t1",))
        knowledge.add_experience("alice", "bob", task, 0.4)     # weak hop
        knowledge.add_experience("bob", "carlos", task, 0.9)
        engine = TrustTransitivity(
            knowledge, omega_recommend=0.5, omega_execute=0.5
        )
        found = engine.conservative("alice", task)
        assert "carlos" not in found

    def test_requires_all_characteristics_on_every_edge(self):
        # B trusts C on {a}; C trusts D on {a, b}.  A task needing {a, b}
        # cannot cross the B->C edge (Eq. 8 intersection).
        knowledge = MappingKnowledge()
        knowledge.add_experience(
            "bob", "carlos", Task("ta", characteristics=("a",)), 0.9
        )
        knowledge.add_experience(
            "carlos", "dale", Task("tab", characteristics=("a", "b")), 0.9
        )
        engine = TrustTransitivity(knowledge)
        found = engine.conservative(
            "bob", Task("new", characteristics=("a", "b"))
        )
        assert "dale" not in found

    def test_characteristic_inference_within_path(self):
        # Edges hold different task *names* sharing the characteristic:
        # conservative transfers via the characteristics (Eq. 9-10).
        knowledge = MappingKnowledge()
        knowledge.add_experience(
            "bob", "carlos", Task("old1", characteristics=("a",)), 0.9
        )
        knowledge.add_experience(
            "carlos", "dale", Task("old2", characteristics=("a",)), 0.8
        )
        engine = TrustTransitivity(knowledge)
        found = engine.conservative(
            "bob", Task("new", characteristics=("a",))
        )
        assert found["dale"].value == pytest.approx(
            combine_two_sided(0.9, 0.8)
        )

    def test_empty_task_finds_nothing(self):
        engine = TrustTransitivity(_simple_knowledge())
        assert engine.conservative("alice", Task("empty")) == {}


class TestAggressive:
    def _two_path_knowledge(self) -> MappingKnowledge:
        """Fig. 5(b): {a1} via B-C-E, {a2} via B-D-E."""
        knowledge = MappingKnowledge()
        task_a = Task("task-a", characteristics=("a1",))
        task_b = Task("task-b", characteristics=("a2",))
        knowledge.add_experience("bob", "carlos", task_a, 0.9)
        knowledge.add_experience("carlos", "evan", task_a, 0.8)
        knowledge.add_experience("bob", "dale", task_b, 0.85)
        knowledge.add_experience("dale", "evan", task_b, 0.75)
        return knowledge

    def test_characteristics_combine_across_paths(self):
        knowledge = self._two_path_knowledge()
        engine = TrustTransitivity(knowledge)
        new_task = Task("new", characteristics=("a1", "a2"))
        found = engine.aggressive("bob", new_task)
        expected = 0.5 * combine_two_sided(0.9, 0.8) + \
            0.5 * combine_two_sided(0.85, 0.75)
        assert found["evan"].value == pytest.approx(expected)

    def test_conservative_cannot_find_what_aggressive_can(self):
        # No single path covers both characteristics (Eq. 8 fails), but
        # the union over paths does (Eq. 12 holds).
        knowledge = self._two_path_knowledge()
        engine = TrustTransitivity(knowledge)
        new_task = Task("new", characteristics=("a1", "a2"))
        assert "evan" not in engine.conservative("bob", new_task)
        assert "evan" in engine.aggressive("bob", new_task)

    def test_partial_coverage_rejected(self):
        knowledge = MappingKnowledge()
        knowledge.add_experience(
            "bob", "carlos", Task("ta", characteristics=("a1",)), 0.9
        )
        engine = TrustTransitivity(knowledge)
        found = engine.aggressive(
            "bob", Task("new", characteristics=("a1", "a2"))
        )
        assert found == {}

    def test_finds_at_least_conservative_candidates(self):
        # On same-type chains aggressive should match conservative.
        knowledge = _simple_knowledge()
        engine = TrustTransitivity(knowledge)
        task = Task("type1", characteristics=("t1",))
        conservative = set(engine.conservative("alice", task))
        aggressive = set(engine.aggressive("alice", task))
        assert conservative <= aggressive


class TestDispatch:
    def test_find_trustees_dispatches(self):
        knowledge = _simple_knowledge()
        engine = TrustTransitivity(knowledge)
        task = Task("type1", characteristics=("t1",))
        for mode in TransitivityMode:
            result = engine.find_trustees("alice", task, mode)
            assert isinstance(result, dict)

    def test_invalid_mode_rejected(self):
        engine = TrustTransitivity(_simple_knowledge())
        with pytest.raises(ValueError):
            engine.find_trustees("alice", Task("t"), "bogus")

    def test_invalid_omega_rejected(self):
        with pytest.raises(ValueError):
            TrustTransitivity(MappingKnowledge(), omega_recommend=2.0)

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            TrustTransitivity(MappingKnowledge(), max_depth=0)
