"""Tests for environment de-biasing (Eq. 25-29, Cannikin rule)."""

import pytest

from repro.core.environment import (
    EnvironmentAwareUpdater,
    EnvironmentReading,
    EnvironmentSchedule,
    cannikin_debias,
)
from repro.core.records import OutcomeFactors
from repro.core.update import ForgettingUpdater


class TestEnvironmentReading:
    def test_worst_without_intermediates(self):
        reading = EnvironmentReading(trustor_env=0.9, trustee_env=0.4)
        assert reading.worst() == 0.4

    def test_worst_with_intermediates(self):
        reading = EnvironmentReading(
            trustor_env=0.9, trustee_env=0.8, intermediate_envs=(0.3, 0.7)
        )
        assert reading.worst() == 0.3

    def test_perfect_default(self):
        assert EnvironmentReading().worst() == 1.0

    def test_zero_indicator_rejected(self):
        with pytest.raises(ValueError):
            EnvironmentReading(trustor_env=0.0)

    def test_above_one_rejected(self):
        with pytest.raises(ValueError):
            EnvironmentReading(trustee_env=1.1)

    def test_bad_intermediate_rejected(self):
        with pytest.raises(ValueError):
            EnvironmentReading(intermediate_envs=(0.5, 0.0))


class TestCannikinDebias:
    def test_perfect_environment_is_identity(self):
        reading = EnvironmentReading()
        assert cannikin_debias(0.6, reading) == pytest.approx(0.6)

    def test_hostile_environment_gives_extra_credit(self):
        reading = EnvironmentReading(trustor_env=0.5, trustee_env=0.5)
        assert cannikin_debias(0.4, reading) == pytest.approx(0.8)

    def test_single_success_may_exceed_one(self):
        # Eq. 29 on a binary observation is deliberately unclamped.
        reading = EnvironmentReading(trustor_env=0.4, trustee_env=0.4)
        assert cannikin_debias(1.0, reading) == pytest.approx(2.5)

    def test_zero_observation_stays_zero(self):
        reading = EnvironmentReading(trustor_env=0.2, trustee_env=0.2)
        assert cannikin_debias(0.0, reading) == 0.0

    def test_worst_indicator_dominates(self):
        # Cannikin Law: only the minimum matters.
        a = EnvironmentReading(trustor_env=0.4, trustee_env=1.0)
        b = EnvironmentReading(trustor_env=0.4, trustee_env=0.41)
        assert cannikin_debias(0.2, a) == pytest.approx(
            cannikin_debias(0.2, b), abs=0.02
        )


class TestEnvironmentAwareUpdater:
    def test_perfect_environment_matches_plain_update(self):
        plain = ForgettingUpdater.uniform(0.5)
        aware = EnvironmentAwareUpdater(inner=plain)
        expected = OutcomeFactors(success_rate=0.6, gain=0.5, damage=0.2,
                                  cost=0.1)
        observed = OutcomeFactors(success_rate=1.0, gain=0.8, damage=0.0,
                                  cost=0.2)
        reading = EnvironmentReading()
        assert aware.update(expected, observed, reading) == plain.update(
            expected, observed
        )

    def test_hostile_environment_boosts_update(self):
        aware = EnvironmentAwareUpdater(inner=ForgettingUpdater.uniform(0.5))
        expected = OutcomeFactors(success_rate=0.5, gain=0.0, damage=0.0,
                                  cost=0.0)
        observed = OutcomeFactors(success_rate=1.0, gain=0.0, damage=0.0,
                                  cost=0.0)
        hostile = EnvironmentReading(trustor_env=0.5, trustee_env=0.5)
        perfect = EnvironmentReading()
        boosted = aware.update(expected, observed, hostile)
        plain = aware.update(expected, observed, perfect)
        assert boosted.success_rate >= plain.success_rate

    def test_success_rate_expectation_stays_in_range(self):
        aware = EnvironmentAwareUpdater(inner=ForgettingUpdater.uniform(0.5))
        expected = OutcomeFactors(success_rate=0.9, gain=0, damage=0, cost=0)
        observed = OutcomeFactors(success_rate=1.0, gain=0, damage=0, cost=0)
        reading = EnvironmentReading(trustor_env=0.1, trustee_env=0.1)
        updated = aware.update(expected, observed, reading)
        assert 0.0 <= updated.success_rate <= 1.0

    def test_unbiased_in_expectation(self):
        # Over many Bernoulli(p*E) observations de-biased by E, the
        # estimate approaches p, the intrinsic competence.
        import random
        rng = random.Random(42)
        aware = EnvironmentAwareUpdater(inner=ForgettingUpdater.uniform(0.95))
        reading = EnvironmentReading(trustor_env=0.5, trustee_env=0.5)
        estimate = OutcomeFactors(success_rate=1.0, gain=0, damage=0, cost=0)
        p = 0.8
        tail = []
        for step in range(3000):
            success = rng.random() < p * reading.worst()
            observed = OutcomeFactors(
                success_rate=1.0 if success else 0.0, gain=0, damage=0, cost=0
            )
            estimate = aware.update(estimate, observed, reading)
            if step >= 1000:
                tail.append(estimate.success_rate)
        mean = sum(tail) / len(tail)
        assert mean == pytest.approx(p, abs=0.07)


class TestEnvironmentSchedule:
    def test_fig15_schedule(self):
        schedule = EnvironmentSchedule([(100, 1.0), (100, 0.4), (100, 0.7)])
        assert schedule.level_at(0) == 1.0
        assert schedule.level_at(99) == 1.0
        assert schedule.level_at(100) == 0.4
        assert schedule.level_at(199) == 0.4
        assert schedule.level_at(200) == 0.7
        assert schedule.total_iterations == 300

    def test_past_end_holds_last_level(self):
        schedule = EnvironmentSchedule([(10, 0.5)])
        assert schedule.level_at(500) == 0.5

    def test_negative_iteration_rejected(self):
        schedule = EnvironmentSchedule([(10, 0.5)])
        with pytest.raises(ValueError):
            schedule.level_at(-1)

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            EnvironmentSchedule([])

    def test_invalid_phase_rejected(self):
        with pytest.raises(ValueError):
            EnvironmentSchedule([(0, 0.5)])
        with pytest.raises(ValueError):
            EnvironmentSchedule([(10, 0.0)])

    def test_readings_cover_schedule(self):
        schedule = EnvironmentSchedule([(3, 1.0), (2, 0.5)])
        readings = list(schedule.readings())
        assert len(readings) == 5
        assert readings[0].worst() == 1.0
        assert readings[4].worst() == 0.5
