"""Tests for time-decayed trust."""

import pytest

from repro.core.timedecay import (
    DecayingTrustLedger,
    TimestampedTrust,
    decay_weight,
)


class TestDecayWeight:
    def test_zero_age_full_weight(self):
        assert decay_weight(0.0, 0.9) == 1.0

    def test_decays_with_age(self):
        assert decay_weight(2.0, 0.9) == pytest.approx(0.81)

    def test_decay_one_never_forgets(self):
        assert decay_weight(1000.0, 1.0) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            decay_weight(1.0, 0.0)
        with pytest.raises(ValueError):
            decay_weight(-1.0, 0.9)
        with pytest.raises(ValueError):
            decay_weight(1.0, 1.5)


class TestTimestampedTrust:
    def test_validation(self):
        with pytest.raises(ValueError):
            TimestampedTrust(value=1.5, time=0.0)
        with pytest.raises(ValueError):
            TimestampedTrust(value=0.5, time=-1.0)


class TestLedger:
    def test_stranger_reads_default(self):
        ledger = DecayingTrustLedger(default_trust=0.4)
        assert ledger.trust("bob", now=10.0) == 0.4

    def test_single_observation_passthrough(self):
        ledger = DecayingTrustLedger()
        ledger.observe("bob", 0.8, time=1.0)
        assert ledger.trust("bob", now=1.0) == pytest.approx(0.8)

    def test_recent_observations_dominate(self):
        ledger = DecayingTrustLedger(decay=0.5)
        ledger.observe("bob", 0.1, time=0.0)
        ledger.observe("bob", 0.9, time=10.0)
        # At t=10 the old observation weighs 0.5^10 ~ 0.001.
        assert ledger.trust("bob", now=10.0) == pytest.approx(0.9, abs=0.01)

    def test_decay_one_gives_plain_average(self):
        ledger = DecayingTrustLedger(decay=1.0)
        ledger.observe("bob", 0.2, time=0.0)
        ledger.observe("bob", 0.8, time=5.0)
        assert ledger.trust("bob", now=100.0) == pytest.approx(0.5)

    def test_future_observations_excluded(self):
        ledger = DecayingTrustLedger()
        ledger.observe("bob", 0.2, time=0.0)
        ledger.observe("bob", 0.9, time=50.0)
        assert ledger.trust("bob", now=10.0) == pytest.approx(0.2)

    def test_out_of_order_times_rejected(self):
        ledger = DecayingTrustLedger()
        ledger.observe("bob", 0.5, time=5.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            ledger.observe("bob", 0.5, time=1.0)

    def test_history_bounded(self):
        ledger = DecayingTrustLedger(max_history=10)
        for t in range(100):
            ledger.observe("bob", 0.5, time=float(t))
        assert len(ledger._history["bob"]) == 10

    def test_staleness(self):
        ledger = DecayingTrustLedger()
        assert ledger.staleness("bob", now=5.0) is None
        ledger.observe("bob", 0.5, time=2.0)
        assert ledger.staleness("bob", now=5.0) == pytest.approx(3.0)

    def test_effective_sample_size_decays(self):
        ledger = DecayingTrustLedger(decay=0.5)
        ledger.observe("bob", 0.5, time=0.0)
        fresh = ledger.effective_sample_size("bob", now=0.0)
        stale = ledger.effective_sample_size("bob", now=5.0)
        assert fresh == 1.0
        assert stale < 0.1

    def test_counterparts_listed(self):
        ledger = DecayingTrustLedger()
        ledger.observe("bob", 0.5, time=0.0)
        ledger.observe("carol", 0.5, time=0.0)
        assert set(ledger.counterparts()) == {"bob", "carol"}

    def test_values_stay_in_unit_interval(self):
        ledger = DecayingTrustLedger(decay=0.9)
        for t in range(50):
            ledger.observe("bob", (t % 2) * 1.0, time=float(t))
        assert 0.0 <= ledger.trust("bob", now=50.0) <= 1.0
