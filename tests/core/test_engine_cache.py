"""Tests for the candidate-ranking fast path (memoized pre-evaluation).

The cache must be observationally transparent: a memoizing engine and a
``memoize=False`` engine fed the same RNG must produce identical
rankings, factors and delegation outcomes, and any store write must
invalidate the affected trustor's memo immediately.
"""

import random

import pytest

from repro.core.agent import (
    HonestTrusteeBehavior,
    ResponsibleTrustorBehavior,
    TrusteeAgent,
    TrustorAgent,
)
from repro.core.engine import DelegationEngine, run_rounds
from repro.core.inference import CharacteristicInferrer
from repro.core.records import OutcomeFactors
from repro.core.task import Task


def make_trustor(name="alice") -> TrustorAgent:
    return TrustorAgent(
        node_id=name,
        behavior=ResponsibleTrustorBehavior(responsibility=1.0),
    )


def make_trustee(name, competence=0.8) -> TrusteeAgent:
    return TrusteeAgent(
        node_id=name,
        behavior=HonestTrusteeBehavior(competence=competence),
    )


@pytest.fixture
def task() -> Task:
    return Task("sensing", characteristics=("sensor",))


@pytest.fixture
def trustor() -> TrustorAgent:
    return make_trustor()


@pytest.fixture
def trustees():
    return [make_trustee(f"t{i}") for i in range(4)]


def seed_expectations(trustor, trustees, task):
    rng = random.Random(42)
    for trustee in trustees:
        trustor.store.set_expected(
            trustee.node_id, task,
            OutcomeFactors(
                success_rate=rng.random(), gain=rng.random(),
                damage=rng.random() / 4, cost=rng.random() / 4,
            ),
        )


class TestStoreVersion:
    def test_version_starts_at_zero(self, trustor):
        assert trustor.store.version == 0

    def test_every_write_bumps_version(self, trustor, trustees, task):
        store = trustor.store
        store.set_expected(
            "t0", task, OutcomeFactors(1.0, 1.0, 0.0, 0.0)
        )
        assert store.version == 1
        from repro.core.records import DelegationRecord, UsageRecord

        store.record_delegation(
            DelegationRecord(
                trustor="alice", trustee="t0", task_name=task.name,
                succeeded=True, gain=1.0, damage=0.0, cost=0.0,
            ),
            task,
        )
        assert store.version == 2
        store.record_usage(
            UsageRecord(trustor="bob", trustee="alice", abusive=False)
        )
        assert store.version == 3


class TestTransparency:
    def test_ranking_identical_with_and_without_cache(
        self, trustor, trustees, task
    ):
        seed_expectations(trustor, trustees, task)
        cached = DelegationEngine(memoize=True)
        uncached = DelegationEngine(memoize=False)
        for _ in range(3):  # repeated calls exercise cache hits
            assert [
                (t.node_id, score)
                for t, score in cached.rank_candidates(trustor, task, trustees)
            ] == [
                (t.node_id, score)
                for t, score in uncached.rank_candidates(trustor, task, trustees)
            ]

    def test_expected_factors_identical_with_inferrer(self, trustor, task):
        trustee = make_trustee("t0")
        related = Task("related", characteristics=("sensor", "gps"))
        trustor.store.set_expected(
            "t0", related, OutcomeFactors(0.7, 0.6, 0.1, 0.2)
        )
        cached = DelegationEngine(
            memoize=True, inferrer=CharacteristicInferrer()
        )
        uncached = DelegationEngine(
            memoize=False, inferrer=CharacteristicInferrer()
        )
        assert cached.expected_factors(
            trustor, trustee, task
        ) == uncached.expected_factors(trustor, trustee, task)
        # Second call must come from the memo and still agree.
        assert cached.expected_factors(
            trustor, trustee, task
        ) == uncached.expected_factors(trustor, trustee, task)

    def test_full_rounds_identical_with_and_without_cache(self, task):
        outcomes = {}
        for memoize in (True, False):
            trustor = make_trustor()
            trustees = [make_trustee(f"t{i}", 0.5) for i in range(3)]
            seed_expectations(trustor, trustees, task)
            engine = DelegationEngine(
                memoize=memoize, rng=random.Random(7)
            )
            outcomes[memoize] = run_rounds(
                engine, [(trustor, task, trustees)] * 20
            )
        assert outcomes[True] == outcomes[False]


class TestInvalidation:
    def test_store_write_invalidates_ranking(self, trustor, trustees, task):
        seed_expectations(trustor, trustees, task)
        engine = DelegationEngine(memoize=True)
        first = engine.rank_candidates(trustor, task, trustees)

        # Promote the currently-worst candidate far above everyone.
        worst = first[-1][0]
        trustor.store.set_expected(
            worst.node_id, task, OutcomeFactors(1.0, 10.0, 0.0, 0.0)
        )
        refreshed = engine.rank_candidates(trustor, task, trustees)
        assert refreshed[0][0].node_id == worst.node_id

    def test_expected_factors_refresh_after_write(self, trustor, task):
        trustee = make_trustee("t0")
        engine = DelegationEngine(memoize=True)
        before = engine.expected_factors(trustor, trustee, task)
        trustor.store.set_expected(
            "t0", task, OutcomeFactors(0.123, 0.456, 0.0, 0.0)
        )
        after = engine.expected_factors(trustor, trustee, task)
        assert after != before
        assert after.success_rate == 0.123

    def test_cached_ranking_rehydrates_current_agents(
        self, trustor, trustees, task
    ):
        seed_expectations(trustor, trustees, task)
        engine = DelegationEngine(memoize=True)
        engine.rank_candidates(trustor, task, trustees)

        clones = [make_trustee(t.node_id) for t in trustees]
        ranked = engine.rank_candidates(trustor, task, clones)
        returned = {id(t) for t, _ in ranked}
        assert returned <= {id(t) for t in clones}

    def test_distinct_candidate_lists_cached_separately(
        self, trustor, trustees, task
    ):
        seed_expectations(trustor, trustees, task)
        engine = DelegationEngine(memoize=True)
        full = engine.rank_candidates(trustor, task, trustees)
        subset = engine.rank_candidates(trustor, task, trustees[:2])
        assert len(full) == 4
        assert len(subset) == 2

    def test_same_named_tasks_with_different_characteristics_not_conflated(
        self, trustor
    ):
        """The inference path reads characteristics, not just the name."""
        trustee = make_trustee("t0")
        trustor.store.set_expected(
            "t0", Task("gps-history", characteristics=("gps",)),
            OutcomeFactors(0.9, 0.5, 0.1, 0.1),
        )
        trustor.store.set_expected(
            "t0", Task("image-history", characteristics=("image",)),
            OutcomeFactors(0.2, 0.5, 0.1, 0.1),
        )
        cached = DelegationEngine(
            memoize=True, inferrer=CharacteristicInferrer()
        )
        uncached = DelegationEngine(
            memoize=False, inferrer=CharacteristicInferrer()
        )
        gps_variant = Task("fresh", characteristics=("gps",))
        image_variant = Task("fresh", characteristics=("image",))
        for variant in (gps_variant, image_variant):
            assert cached.expected_factors(
                trustor, trustee, variant
            ) == uncached.expected_factors(trustor, trustee, variant)

    def test_policy_swap_invalidates_ranking(self, trustor, trustees, task):
        from repro.core.policy import SuccessRatePolicy

        seed_expectations(trustor, trustees, task)
        engine = DelegationEngine(memoize=True)
        engine.rank_candidates(trustor, task, trustees)
        engine.policy = SuccessRatePolicy()
        swapped = engine.rank_candidates(trustor, task, trustees)
        oracle = DelegationEngine(
            memoize=False, policy=SuccessRatePolicy()
        ).rank_candidates(trustor, task, trustees)
        assert [(t.node_id, s) for t, s in swapped] == [
            (t.node_id, s) for t, s in oracle
        ]


class _TunablePolicy:
    """A legal, *mutable* policy (the built-ins are frozen, subclasses
    need not be)."""

    def __init__(self, weight: float) -> None:
        self.weight = weight

    def score(self, factors) -> float:
        return self.weight * factors.success_rate


class _DiscountingInferrer(CharacteristicInferrer):
    """An inferrer with mutable configuration affecting its output."""

    def __init__(self, discount: float) -> None:
        self.discount = discount

    def infer(self, new_task, experienced):
        value = super().infer(new_task, experienced)
        return type(value)(value.value * self.discount, direct=False)


class TestFingerprintInvalidation:
    """In-place reconfiguration must invalidate, not serve stale memos.

    The cache used to compare policy/inferrer by ``is``: mutating the
    same object in place kept the identity and served rankings scored
    under the *old* configuration.  The fingerprint is value-based, so
    mutation invalidates and an equal-valued swap stays warm.
    """

    def test_in_place_policy_mutation_invalidates_ranking(
        self, trustor, trustees, task
    ):
        seed_expectations(trustor, trustees, task)
        policy = _TunablePolicy(weight=1.0)
        engine = DelegationEngine(memoize=True, policy=policy)
        engine.rank_candidates(trustor, task, trustees)

        policy.weight = -1.0  # same object, reversed preference
        mutated = engine.rank_candidates(trustor, task, trustees)
        oracle = DelegationEngine(
            memoize=False, policy=_TunablePolicy(weight=-1.0)
        ).rank_candidates(trustor, task, trustees)
        assert [(t.node_id, s) for t, s in mutated] == [
            (t.node_id, s) for t, s in oracle
        ]

    def test_in_place_inferrer_mutation_invalidates_factors(self, task):
        trustor = make_trustor()
        trustee = make_trustee("t0")
        related = Task("related", characteristics=("sensor", "gps"))
        trustor.store.set_expected(
            "t0", related, OutcomeFactors(0.8, 0.6, 0.1, 0.2)
        )
        inferrer = _DiscountingInferrer(discount=1.0)
        engine = DelegationEngine(memoize=True, inferrer=inferrer)
        before = engine.expected_factors(trustor, trustee, task)

        inferrer.discount = 0.5  # same object, halved inference
        after = engine.expected_factors(trustor, trustee, task)
        assert after.success_rate == pytest.approx(
            before.success_rate * 0.5
        )

    def test_equal_valued_policy_swap_keeps_cache_warm(
        self, trustor, trustees, task
    ):
        from repro.core.policy import NetProfitPolicy

        seed_expectations(trustor, trustees, task)
        engine = DelegationEngine(memoize=True, policy=NetProfitPolicy())
        engine.rank_candidates(trustor, task, trustees)
        memo = engine._caches[trustor.store]

        engine.policy = NetProfitPolicy()  # different object, equal value
        engine.rank_candidates(trustor, task, trustees)
        assert engine._caches[trustor.store] is memo
