"""Tests for the attack models and credibility-weighted defence."""

import random

import pytest

from repro.core.attacks import (
    BadMouthingAttacker,
    BallotStuffingAttacker,
    CredibilityWeightedAggregator,
    HonestRecommender,
    OpportunisticServiceAttacker,
    Recommendation,
    SelfPromotingAttacker,
    run_attack_scenario,
)


@pytest.fixture
def rng():
    return random.Random(0)


class TestBehaviors:
    def test_honest_reports_near_truth(self, rng):
        behavior = HonestRecommender(noise=0.05)
        claims = [
            behavior.recommend("h", "x", 0.6, rng) for _ in range(200)
        ]
        assert all(0.55 <= claim <= 0.65 for claim in claims)

    def test_self_promoter_inflates_only_itself(self, rng):
        behavior = SelfPromotingAttacker()
        assert behavior.recommend("me", "me", 0.2, rng) == 1.0
        other = behavior.recommend("me", "other", 0.2, rng)
        assert other < 0.3

    def test_bad_mouther_smears_outsiders(self, rng):
        behavior = BadMouthingAttacker(coalition=frozenset({"pal"}))
        assert behavior.recommend("bm", "victim", 0.9, rng) == 0.0
        assert behavior.recommend("bm", "pal", 0.9, rng) > 0.8

    def test_ballot_stuffer_inflates_coalition(self, rng):
        behavior = BallotStuffingAttacker(coalition=frozenset({"pal"}))
        assert behavior.recommend("bs", "pal", 0.1, rng) == 1.0
        outsider = behavior.recommend("bs", "victim", 0.5, rng)
        assert outsider < 0.6

    def test_opportunistic_flips_after_honest_phase(self, rng):
        behavior = OpportunisticServiceAttacker(honest_phase=3)
        early = [
            behavior.recommend("op", "victim", 0.8, rng) for _ in range(3)
        ]
        late = behavior.recommend("op", "victim", 0.8, rng)
        assert all(claim > 0.7 for claim in early)
        assert late < 0.2


class TestAggregator:
    def _recs(self, *pairs):
        return [
            Recommendation(recommender=name, about="t", claimed=claim)
            for name, claim in pairs
        ]

    def test_empty_returns_none(self):
        aggregator = CredibilityWeightedAggregator()
        assert aggregator.aggregate([]) is None
        assert aggregator.naive_aggregate([]) is None

    def test_naive_is_plain_mean(self):
        aggregator = CredibilityWeightedAggregator()
        recs = self._recs(("a", 0.2), ("b", 0.8))
        assert aggregator.naive_aggregate(recs) == pytest.approx(0.5)

    def test_low_credibility_discarded(self):
        aggregator = CredibilityWeightedAggregator(
            credibility={"liar": 0.1, "honest": 0.9},
        )
        recs = self._recs(("liar", 0.0), ("honest", 0.8))
        assert aggregator.aggregate(recs) == pytest.approx(0.8)

    def test_self_recommendations_ignored(self):
        aggregator = CredibilityWeightedAggregator(
            credibility={"t": 1.0, "honest": 0.9},
        )
        recs = [
            Recommendation(recommender="t", about="t", claimed=1.0),
            Recommendation(recommender="honest", about="t", claimed=0.5),
        ]
        assert aggregator.aggregate(recs) == pytest.approx(0.5)

    def test_all_discarded_returns_none(self):
        aggregator = CredibilityWeightedAggregator(
            credibility={"liar": 0.0},
        )
        assert aggregator.aggregate(self._recs(("liar", 1.0))) is None

    def test_credibility_update_punishes_wrong_claims(self):
        aggregator = CredibilityWeightedAggregator()
        before = aggregator.credibility_of("liar")
        for _ in range(30):
            aggregator.update_credibility("liar", claimed=1.0, observed=0.1)
        after = aggregator.credibility_of("liar")
        assert after < before
        assert after < aggregator.credibility_floor

    def test_credibility_update_rewards_accuracy(self):
        aggregator = CredibilityWeightedAggregator()
        for _ in range(30):
            aggregator.update_credibility("good", claimed=0.8, observed=0.8)
        assert aggregator.credibility_of("good") > 0.9


class TestScenarios:
    @pytest.mark.parametrize("factory,target", [
        (lambda i: BadMouthingAttacker(), 0.8),
        (lambda i: BallotStuffingAttacker(
            coalition=frozenset({"target"})), 0.2),
        (lambda i: OpportunisticServiceAttacker(honest_phase=5), 0.8),
    ])
    def test_defence_beats_naive(self, factory, target):
        result = run_attack_scenario(
            target_trust=target,
            honest_count=6,
            attacker_factory=factory,
            attacker_count=6,
            rounds=40,
            seed=3,
        )
        assert result.defended_error < result.naive_error

    def test_defended_estimate_accurate_under_bad_mouthing(self):
        result = run_attack_scenario(
            target_trust=0.8,
            honest_count=6,
            attacker_factory=lambda i: BadMouthingAttacker(),
            attacker_count=6,
            rounds=40,
            seed=3,
        )
        assert result.defended_error < 0.1
        # The naive mean is dragged roughly half-way toward the smear.
        assert result.naive_error > 0.25

    def test_no_attackers_both_accurate(self):
        result = run_attack_scenario(
            target_trust=0.6,
            honest_count=8,
            attacker_factory=lambda i: HonestRecommender(),
            attacker_count=0,
            rounds=20,
            seed=1,
        )
        assert result.naive_error < 0.1
        assert result.defended_error < 0.1
