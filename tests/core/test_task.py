"""Tests for tasks and the characteristic algebra (Section 4.2)."""

import pytest

from repro.core.task import Task, recommendation_of


class TestConstruction:
    def test_characteristics_are_a_frozenset(self):
        task = Task("t", characteristics=("a", "b"))
        assert task.characteristics == frozenset(("a", "b"))

    def test_empty_task_allowed(self):
        task = Task("empty")
        assert task.characteristics == frozenset()
        assert task.weight_map == {}

    def test_duplicate_characteristics_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Task("t", characteristics=("a", "a"))

    def test_default_weights_uniform(self):
        task = Task("t", characteristics=("a", "b", "c", "d"))
        for weight in task.weight_map.values():
            assert weight == pytest.approx(0.25)

    def test_weights_normalized(self):
        task = Task("t", characteristics=("a", "b"), weights={"a": 3, "b": 1})
        assert task.weight_of("a") == pytest.approx(0.75)
        assert task.weight_of("b") == pytest.approx(0.25)

    def test_weight_of_absent_characteristic_is_zero(self):
        task = Task("t", characteristics=("a",))
        assert task.weight_of("zzz") == 0.0

    def test_missing_weight_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            Task("t", characteristics=("a", "b"), weights={"a": 1.0})

    def test_unknown_weight_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            Task("t", characteristics=("a",), weights={"a": 1.0, "b": 1.0})

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Task("t", characteristics=("a", "b"),
                 weights={"a": -1.0, "b": 2.0})

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            Task("t", characteristics=("a", "b"),
                 weights={"a": 0.0, "b": 0.0})

    def test_tasks_are_hashable_and_comparable(self):
        a = Task("t", characteristics=("a",))
        b = Task("t", characteristics=("a",))
        assert a == b
        assert hash(a) == hash(b)

    def test_weight_order_does_not_affect_equality(self):
        a = Task("t", characteristics=("a", "b"),
                 weights={"a": 1.0, "b": 1.0})
        b = Task("t", characteristics=("b", "a"),
                 weights={"b": 1.0, "a": 1.0})
        assert a == b


class TestAlgebra:
    def test_subset_of_union(self, traffic_task, gps_task, image_task):
        # Eq. 12: {a(tau'')} within the union of experienced tasks.
        assert traffic_task.is_subset_of([gps_task, image_task])

    def test_not_subset_when_characteristic_missing(self, traffic_task, gps_task):
        assert not traffic_task.is_subset_of([gps_task])

    def test_subset_of_empty_pool(self):
        task = Task("t", characteristics=("a",))
        assert not task.is_subset_of([])

    def test_empty_task_subset_of_anything(self, gps_task):
        assert Task("empty").is_subset_of([gps_task])
        assert Task("empty").is_subset_of([])

    def test_within_intersection(self):
        # Eq. 8: conservative requires the intersection to cover tau''.
        big1 = Task("t1", characteristics=("a", "b", "c"))
        big2 = Task("t2", characteristics=("b", "c", "d"))
        inner = Task("t3", characteristics=("b", "c"))
        outer = Task("t4", characteristics=("a", "b"))
        assert inner.is_within_intersection(big1, big2)
        assert not outer.is_within_intersection(big1, big2)

    def test_shares_characteristic(self, gps_task, image_task, traffic_task):
        assert traffic_task.shares_characteristic(gps_task)
        assert not gps_task.shares_characteristic(image_task)


class TestRecommendation:
    def test_recommendation_has_same_characteristics(self, traffic_task):
        rec = recommendation_of(traffic_task)
        assert rec.characteristics == traffic_task.characteristics

    def test_recommendation_name_is_distinct(self, traffic_task):
        rec = recommendation_of(traffic_task)
        assert rec.name != traffic_task.name
        assert traffic_task.name in rec.name

    def test_recommendation_preserves_weights(self):
        task = Task("t", characteristics=("a", "b"),
                    weights={"a": 3.0, "b": 1.0})
        rec = recommendation_of(task)
        assert rec.weight_of("a") == pytest.approx(0.75)

    def test_recommendation_of_empty_task(self):
        rec = recommendation_of(Task("empty"))
        assert rec.characteristics == frozenset()
