"""Tests for identifier validation helpers."""

import pytest

from repro.core.ids import (
    validate_node_id,
    validate_non_negative,
    validate_probability,
)


class TestValidateNodeId:
    def test_accepts_int_and_str(self):
        assert validate_node_id(7) == 7
        assert validate_node_id("device-1") == "device-1"

    def test_rejects_none(self):
        with pytest.raises(ValueError):
            validate_node_id(None)

    def test_rejects_unhashable(self):
        with pytest.raises(TypeError):
            validate_node_id(["list"])


class TestValidateProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert validate_probability(value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan")])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            validate_probability(value)

    def test_coerces_to_float(self):
        assert isinstance(validate_probability(1), float)

    def test_name_in_message(self):
        with pytest.raises(ValueError, match="alpha"):
            validate_probability(2.0, name="alpha")


class TestValidateNonNegative:
    def test_accepts_zero_and_positive(self):
        assert validate_non_negative(0.0) == 0.0
        assert validate_non_negative(123.4) == 123.4

    def test_rejects_negative_and_nan(self):
        with pytest.raises(ValueError):
            validate_non_negative(-1.0)
        with pytest.raises(ValueError):
            validate_non_negative(float("nan"))
