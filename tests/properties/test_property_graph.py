"""Property-based tests for graph structure and community invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.socialnet.communities import louvain_communities
from repro.socialnet.graph import SocialGraph
from repro.socialnet.metrics import (
    average_clustering_coefficient,
    average_degree,
    average_path_length,
    diameter,
)
from repro.socialnet.modularity import modularity


@st.composite
def graphs(draw, max_nodes=12):
    """Random small simple graphs."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    graph = SocialGraph()
    for node in range(n):
        graph.add_node(node)
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    if possible:
        chosen = draw(st.lists(st.sampled_from(possible), max_size=30))
        for u, v in chosen:
            graph.add_edge(u, v)
    return graph


class TestGraphProperties:
    @given(graphs())
    def test_handshake_lemma(self, graph):
        degree_sum = sum(graph.degree(node) for node in graph.nodes())
        assert degree_sum == 2 * graph.edge_count

    @given(graphs())
    def test_average_degree_consistent(self, graph):
        if graph.node_count:
            expected = 2.0 * graph.edge_count / graph.node_count
            assert abs(average_degree(graph) - expected) < 1e-12

    @given(graphs())
    def test_neighbors_symmetric(self, graph):
        for u, v in graph.edges():
            assert u in graph.neighbors(v)
            assert v in graph.neighbors(u)

    @given(graphs())
    def test_clustering_in_unit_interval(self, graph):
        assert 0.0 <= average_clustering_coefficient(graph) <= 1.0

    @given(graphs())
    @settings(max_examples=40)
    def test_diameter_at_least_average_path(self, graph):
        assert diameter(graph) >= average_path_length(graph) - 1e-9

    @given(graphs())
    @settings(max_examples=40)
    def test_subgraph_edges_bounded(self, graph):
        nodes = graph.nodes()[: graph.node_count // 2]
        sub = graph.subgraph(nodes)
        assert sub.edge_count <= graph.edge_count
        assert sub.node_count == len(set(nodes))


class TestCommunityProperties:
    @given(graphs(), st.integers(min_value=0, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_louvain_is_a_partition(self, graph, seed):
        partition = louvain_communities(graph, seed=seed)
        assert set(partition) == set(graph.nodes())

    @given(graphs(), st.integers(min_value=0, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_louvain_at_least_trivial_modularity(self, graph, seed):
        if graph.edge_count == 0:
            return
        partition = louvain_communities(graph, seed=seed)
        trivial = {node: 0 for node in graph.nodes()}
        assert modularity(graph, partition) >= \
            modularity(graph, trivial) - 1e-9

    @given(graphs())
    @settings(max_examples=40)
    def test_modularity_bounded(self, graph):
        if graph.edge_count == 0:
            return
        partition = {node: 0 for node in graph.nodes()}
        q = modularity(graph, partition)
        assert -1.0 <= q <= 1.0
