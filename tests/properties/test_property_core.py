"""Property-based tests on core trust-model invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.environment import EnvironmentReading, cannikin_debias
from repro.core.inference import CharacteristicInferrer
from repro.core.records import OutcomeFactors
from repro.core.task import Task
from repro.core.transitivity import (
    combine_chain,
    combine_two_sided,
    traditional_chain,
)
from repro.core.trustworthiness import clamp01, normalize_net_profit
from repro.core.update import ForgettingUpdater, forget

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
env = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)


class TestCombinerProperties:
    @given(unit, unit)
    def test_range(self, a, b):
        assert 0.0 <= combine_two_sided(a, b) <= 1.0

    @given(unit, unit)
    def test_symmetry(self, a, b):
        assert abs(
            combine_two_sided(a, b) - combine_two_sided(b, a)
        ) < 1e-12

    @given(unit)
    def test_identity_element(self, t):
        assert abs(combine_two_sided(1.0, t) - t) < 1e-12

    @given(unit, unit)
    def test_dominates_product(self, a, b):
        # Eq. 7 >= Eq. 5 pointwise (the neglected term is non-negative).
        assert combine_two_sided(a, b) >= a * b - 1e-12

    @given(st.lists(unit, max_size=6))
    def test_chain_range(self, hops):
        assert 0.0 <= combine_chain(hops) <= 1.0
        assert 0.0 <= traditional_chain(hops) <= 1.0

    @given(st.lists(unit, min_size=1, max_size=6))
    def test_traditional_chain_never_grows(self, hops):
        # The product can only shrink as the path lengthens.
        assert traditional_chain(hops) <= min(hops) + 1e-12


class TestNormalizationProperties:
    @given(st.floats(min_value=-10.0, max_value=10.0, allow_nan=False))
    def test_output_in_unit_interval(self, raw):
        assert 0.0 <= normalize_net_profit(raw) <= 1.0

    @given(
        st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
        st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
    )
    def test_monotone(self, a, b):
        low, high = sorted((a, b))
        assert normalize_net_profit(low) <= normalize_net_profit(high) + 1e-12

    @given(unit, unit, unit, unit)
    def test_factors_raw_profit_within_normalization_range(self, s, g, d, c):
        factors = OutcomeFactors(success_rate=s, gain=g, damage=d, cost=c)
        raw = factors.net_profit()
        assert -2.0 - 1e-9 <= raw <= 1.0 + 1e-9
        value = normalize_net_profit(raw)
        assert 0.0 <= value <= 1.0


class TestForgettingProperties:
    @given(unit, unit, unit)
    def test_blend_between_inputs(self, old, observed, beta):
        new = forget(old, observed, beta)
        low, high = sorted((old, observed))
        assert low - 1e-12 <= new <= high + 1e-12

    @given(unit, unit, unit)
    def test_contraction(self, old, observed, beta):
        new = forget(old, observed, beta)
        assert abs(new - observed) <= beta * abs(old - observed) + 1e-12

    @given(unit, unit, unit, unit, unit, unit, unit, unit, unit)
    def test_updater_preserves_validity(self, s1, g1, d1, c1,
                                        s2, g2, d2, c2, beta):
        updater = ForgettingUpdater.uniform(beta)
        expected = OutcomeFactors(success_rate=s1, gain=g1, damage=d1,
                                  cost=c1)
        observed = OutcomeFactors(success_rate=s2, gain=g2, damage=d2,
                                  cost=c2)
        updated = updater.update(expected, observed)
        assert 0.0 <= updated.success_rate <= 1.0
        assert updated.gain >= 0.0
        assert updated.damage >= 0.0
        assert updated.cost >= 0.0


class TestInferenceProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["a", "b", "c"]), unit),
            min_size=1, max_size=6,
        )
    )
    def test_inference_bounded_by_inputs(self, experience):
        inferrer = CharacteristicInferrer()
        tasks = [
            (Task(f"t{i}", characteristics=(char,)), trust)
            for i, (char, trust) in enumerate(experience)
        ]
        covered = {char for char, _ in experience}
        new_task = Task("new", characteristics=tuple(sorted(covered)))
        inferred = inferrer.infer(new_task, tasks)
        trusts = [trust for _, trust in experience]
        assert min(trusts) - 1e-9 <= inferred.value <= max(trusts) + 1e-9

    @given(unit)
    def test_single_source_identity(self, trust):
        inferrer = CharacteristicInferrer()
        source = Task("src", characteristics=("a",))
        new = Task("new", characteristics=("a",))
        inferred = inferrer.infer(new, [(source, trust)])
        assert abs(inferred.value - trust) < 1e-12


class TestEnvironmentProperties:
    @given(unit, env, env)
    def test_debias_never_reduces_positive_observation(self, observed,
                                                       e1, e2):
        reading = EnvironmentReading(trustor_env=e1, trustee_env=e2)
        assert cannikin_debias(observed, reading) >= observed - 1e-12

    @given(env, env, st.lists(env, max_size=4))
    def test_worst_is_minimum(self, e1, e2, intermediates):
        reading = EnvironmentReading(
            trustor_env=e1, trustee_env=e2,
            intermediate_envs=tuple(intermediates),
        )
        assert reading.worst() == min([e1, e2] + intermediates)

    @given(st.floats(min_value=-5, max_value=5, allow_nan=False))
    def test_clamp_idempotent(self, value):
        assert clamp01(clamp01(value)) == clamp01(value)
