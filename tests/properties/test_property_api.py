"""Property tests for the job API (Hypothesis).

The contracts that must hold for *any* valid job description:

* **Spec JSON stability** — ``SweepSpec.from_json(spec.to_json())``
  is the identity, for any registered scenario, any seed list, any
  JSON-native override values (including containers that detour
  through JSON lists).
* **Profile JSON stability** — same for ``ExecutionProfile`` over its
  whole valid configuration space.
* **Label uniqueness** — campaign labels are unique and order-stable
  however scenarios repeat.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ExecutionProfile, SweepSpec, campaign_labels
from repro.simulation import registry

_SEEDS = st.lists(
    st.integers(min_value=-10**6, max_value=10**6),
    min_size=1, max_size=8,
)

# JSON-native override values; containers normalize to tuples on both
# sides of the round trip, so equality must still hold.
_SCALARS = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
    st.booleans(),
)
_VALUES = st.one_of(_SCALARS, st.lists(_SCALARS, max_size=4))


@st.composite
def sweep_specs(draw):
    """Any valid spec: real scenario, real override names, any values.

    Override *names* must be parameters the scenario declares (the spec
    validates that); values are unconstrained JSON-native data — spec
    validation is deliberately shape-only.
    """
    scenario = draw(st.sampled_from(registry.names()))
    declared = sorted(registry.get(scenario).defaults)
    names = draw(st.sets(st.sampled_from(declared), max_size=3)) \
        if declared else set()
    overrides = {name: draw(_VALUES) for name in sorted(names)}
    return SweepSpec(
        scenario,
        draw(_SEEDS),
        smoke=draw(st.booleans()),
        overrides=overrides,
    )


class TestSpecRoundTrip:
    @settings(max_examples=60)
    @given(spec=sweep_specs())
    def test_json_round_trip_is_identity(self, spec):
        rebuilt = SweepSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert hash(rebuilt) == hash(spec)
        # Stability: serializing the rebuilt spec is byte-identical.
        assert rebuilt.to_json() == spec.to_json()

    @settings(max_examples=60)
    @given(spec=sweep_specs())
    def test_params_key_survives_the_round_trip(self, spec):
        assert SweepSpec.from_json(spec.to_json()).params_key() \
            == spec.params_key()


@st.composite
def execution_profiles(draw):
    """Any profile the strict validator accepts."""
    backend = draw(st.sampled_from(("process", "thread", "distributed")))
    if backend == "distributed":
        queue_dir = draw(st.one_of(
            st.none(), st.just("/tmp/hypothesis-queue"),
        ))
        min_workers = 1 if queue_dir is None else 0
        workers = draw(st.integers(min_value=min_workers, max_value=8))
        lease_ttl = draw(st.one_of(
            st.none(),
            st.floats(min_value=0.1, max_value=600.0,
                      allow_nan=False, allow_infinity=False),
        ))
    else:
        queue_dir = None
        lease_ttl = None
        workers = draw(st.integers(min_value=1, max_value=8))
    no_cache = draw(st.booleans())
    cache_dir = None if no_cache else draw(st.one_of(
        st.none(), st.just("/tmp/hypothesis-cache"),
    ))
    return ExecutionProfile(
        workers=workers,
        backend=backend,
        chunk_size=draw(st.one_of(
            st.none(), st.integers(min_value=1, max_value=16),
        )),
        cache_dir=cache_dir,
        no_cache=no_cache,
        queue_dir=queue_dir,
        lease_ttl=lease_ttl,
    )


class TestProfileRoundTrip:
    @settings(max_examples=60)
    @given(profile=execution_profiles())
    def test_payload_round_trip_is_identity(self, profile):
        assert ExecutionProfile.from_payload(profile.to_payload()) \
            == profile


class TestCampaignLabels:
    @settings(max_examples=40)
    @given(scenarios=st.lists(
        st.sampled_from(registry.names()), min_size=1, max_size=12,
    ))
    def test_labels_are_unique_and_prefix_stable(self, scenarios):
        specs = [SweepSpec(name, [1]) for name in scenarios]
        labels = campaign_labels(specs)
        assert len(set(labels)) == len(labels) == len(specs)
        # Every label starts with its spec's scenario name, so exports
        # stay greppable by scenario.
        for label, spec in zip(labels, specs):
            assert label == spec.scenario or label.startswith(
                spec.scenario + "#"
            )
