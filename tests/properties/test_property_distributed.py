"""Property tests for the distributed sweep layer (Hypothesis).

Three contracts that must hold for *any* input, not just the examples
the unit tests pick:

* **Key stability** — cache/task keys depend on the parameter *set*,
  never on dict insertion order or on whether the parameters took the
  JSON round trip through a task file.
* **Partition invariance** — any chunking of the same seed set merges
  into byte-identical sweep results.
* **Lease exclusivity** — however many claimers race, at most one
  holds the lease.
"""

import json
import threading

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.simulation import registry
from repro.simulation.cache import SweepCache
from repro.simulation.distributed import (
    WorkQueue,
    params_signature,
    rehydrate_params,
)
from repro.simulation.runner import average_series
from repro.simulation.sweep import run_sweep

# JSON-native parameter values, as scenario defaults/overrides are.
_SCALARS = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
    st.booleans(),
)
_VALUES = st.one_of(
    _SCALARS,
    st.lists(_SCALARS, max_size=4),
    st.lists(st.lists(_SCALARS, max_size=3), max_size=3),
)
_PARAM_DICTS = st.dictionaries(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=10
    ),
    _VALUES,
    max_size=6,
)


class TestKeyStability:
    @given(params=_PARAM_DICTS, data=st.data())
    def test_signature_ignores_insertion_order(self, params, data):
        items = list(params.items())
        shuffled = data.draw(st.permutations(items))
        assert params_signature(items) == params_signature(shuffled)

    @given(params=_PARAM_DICTS, seed=st.integers(0, 2**31))
    def test_cache_key_ignores_insertion_order_and_json_trip(
        self, params, seed
    ):
        signature = params_signature(params)
        reversed_signature = params_signature(
            list(reversed(list(params.items())))
        )
        wire = rehydrate_params(
            json.loads(json.dumps([[k, v] for k, v in signature]))
        )
        key = SweepCache.key("scenario", signature, seed, version="v")
        assert key == SweepCache.key(
            "scenario", reversed_signature, seed, version="v"
        )
        assert key == SweepCache.key("scenario", wire, seed, version="v")

    @given(name=st.sampled_from(registry.names()))
    @settings(max_examples=20, deadline=None)
    def test_every_scenario_params_survive_the_task_file_trip(self, name):
        params = registry.get(name).params_key(smoke=True)
        wire = json.loads(json.dumps([[k, v] for k, v in params]))
        assert rehydrate_params(wire) == params


class TestPartitionInvariance:
    @given(
        seed_count=st.integers(min_value=1, max_value=5),
        chunk_size=st.integers(min_value=1, max_value=7),
    )
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_chunking_merges_to_the_oracle(
        self, tmp_path, seed_count, chunk_size
    ):
        """Distributed execution over any contiguous chunking of any
        seed set is byte-identical to the sequential oracle."""
        seeds = list(range(1, seed_count + 1))
        spec = registry.get("fig15-environment")
        oracle = average_series(spec.bound(smoke=True), seeds)
        sweep = run_sweep(
            "fig15-environment", seeds, workers=0, backend="distributed",
            smoke=True, chunk_size=chunk_size,
            queue_dir=tmp_path / f"q-{seed_count}-{chunk_size}",
        )
        assert sweep.mean == oracle
        assert sweep.seeds == seeds
        assert [r for r in sweep.per_seed] == [
            spec.run(seed, smoke=True) for seed in seeds
        ]

    @given(
        seeds=st.lists(
            st.integers(min_value=0, max_value=10**6),
            min_size=1, max_size=40, unique=True,
        ),
        chunk_size=st.integers(min_value=1, max_value=9),
    )
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_sharding_is_a_partition(self, tmp_path, seeds, chunk_size):
        """Task chunks are disjoint, contiguous and cover every seed in
        order — the precondition for order-preserving merges."""
        spec = registry.get("fig15-environment")
        queue = WorkQueue.create(
            tmp_path / "partition", spec.name,
            spec.params_key(smoke=True), seeds, chunk_size,
        )
        chunks = [
            queue.manifest["chunks"][task_id]
            for task_id in queue.task_ids()
        ]
        flattened = [seed for chunk in chunks for seed in chunk]
        assert flattened == seeds
        assert all(len(chunk) <= chunk_size for chunk in chunks)
        assert all(chunk for chunk in chunks)


class TestLeaseExclusivity:
    @given(claimers=st.integers(min_value=2, max_value=10))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_at_most_one_concurrent_claimer_wins(self, tmp_path, claimers):
        spec = registry.get("fig15-environment")
        queue = WorkQueue.create(
            tmp_path / f"claims-{claimers}", spec.name,
            spec.params_key(smoke=True), [1], 1,
        )
        barrier = threading.Barrier(claimers)
        winners = []
        lock = threading.Lock()

        def contend(name):
            barrier.wait()
            claim = queue.claim("task-0000", name)
            if claim is not None:
                with lock:
                    winners.append(claim)

        threads = [
            threading.Thread(target=contend, args=(f"claimer-{i}",))
            for i in range(claimers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(winners) == 1
        # The lease on disk names the winner, and releasing it lets
        # exactly one next claimer in.
        claim = winners[0]
        assert claim.lease_path.read_text() == claim.owner
        queue.release(claim)
        assert queue.claim("task-0000", "afterwards") is not None
