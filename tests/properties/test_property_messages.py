"""Property-based tests for fragmentation and task algebra."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.task import Task
from repro.iotnet.messages import Reassembler, fragment_payload

payloads = st.text(
    alphabet=st.characters(codec="utf-8", categories=("L", "N", "P", "Z")),
    max_size=300,
)


class TestFragmentationProperties:
    @given(payloads, st.integers(min_value=1, max_value=64))
    def test_reassembly_is_identity(self, payload, size):
        frames = fragment_payload("a", "b", payload, max_fragment_size=size)
        completed = Reassembler().accept_all(frames)
        assert completed == [payload]

    @given(payloads, st.integers(min_value=1, max_value=64),
           st.randoms(use_true_random=False))
    def test_reassembly_order_independent(self, payload, size, rng):
        frames = fragment_payload("a", "b", payload, max_fragment_size=size)
        shuffled = list(frames)
        rng.shuffle(shuffled)
        completed = Reassembler().accept_all(shuffled)
        assert completed == [payload]

    @given(payloads, st.integers(min_value=1, max_value=64))
    def test_fragment_sizes_bounded(self, payload, size):
        frames = fragment_payload("a", "b", payload, max_fragment_size=size)
        for frame in frames:
            assert len(frame.payload) <= size

    @given(payloads, st.integers(min_value=1, max_value=64))
    def test_fragment_count_consistent(self, payload, size):
        frames = fragment_payload("a", "b", payload, max_fragment_size=size)
        assert all(f.fragment_count == len(frames) for f in frames)
        assert [f.fragment_index for f in frames] == list(range(len(frames)))


characteristics = st.lists(
    st.sampled_from(["a", "b", "c", "d", "e"]), unique=True, max_size=5
)


class TestTaskAlgebraProperties:
    @given(characteristics, characteristics)
    def test_subset_matches_set_semantics(self, first, second):
        task = Task("t", characteristics=first)
        other = Task("o", characteristics=second)
        assert task.is_subset_of([other]) == (set(first) <= set(second))

    @given(characteristics, characteristics, characteristics)
    def test_intersection_matches_set_semantics(self, target, first, second):
        task = Task("t", characteristics=target)
        a = Task("a", characteristics=first)
        b = Task("b", characteristics=second)
        expected = set(target) <= (set(first) & set(second))
        assert task.is_within_intersection(a, b) == expected

    @given(characteristics)
    def test_weights_always_normalized(self, chars):
        task = Task("t", characteristics=chars)
        if chars:
            assert abs(sum(task.weight_map.values()) - 1.0) < 1e-9
        else:
            assert task.weight_map == {}
