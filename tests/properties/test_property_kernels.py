"""Property tests for the vectorized kernels (Hypothesis).

The kernel contract is **bit-identity**, not closeness: for any store
contents, any task, any candidate ordering — including NaN scores and
empty candidate lists — the vectorized backend must produce results
``==``-equal to the python oracle.  Approximate assertions would hide
exactly the class of bug these kernels can introduce (rearranged
float arithmetic), so every comparison here is exact.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agent import (
    HonestTrusteeBehavior,
    ResponsibleTrustorBehavior,
    TrusteeAgent,
    TrustorAgent,
)
from repro.core.engine import DelegationEngine
from repro.core.kernels import (
    HAVE_NUMPY,
    DrawStream,
    bernoulli_block,
    combine_chain_columns,
    factor_columns,
    forget_scan,
    mt_seed_key,
    rank_order,
    score_columns,
    traditional_chain_columns,
    trust_update_columns,
)
from repro.core.policy import (
    GainOnlyPolicy,
    NetProfitPolicy,
    SuccessRatePolicy,
)
from repro.core.records import OutcomeFactors
from repro.core.task import Task
from repro.core.transitivity import combine_chain, traditional_chain
from repro.core.update import ForgettingUpdater, forget

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="vectorized kernels need numpy"
)

# Full-range float64 probabilities plus the exact edge values.
_PROBS = st.one_of(
    st.floats(min_value=0.0, max_value=1.0),
    st.sampled_from([0.0, 1.0, 0.5]),
)
# Stakes are non-negative finite floats (OutcomeFactors validates), but
# span enough magnitude for the score arithmetic to stress rounding.
_MAGNITUDES = st.floats(min_value=0.0, max_value=1e300)
_SEEDS = st.one_of(
    st.integers(min_value=-2**40, max_value=2**40),
    st.text(max_size=16),
)


class TestStreamReplication:
    @given(seed=_SEEDS, count=st.integers(min_value=0, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_block_equals_successive_random_calls(self, seed, count):
        oracle = random.Random(seed)
        block = DrawStream(seed).block(count)
        assert block.tolist() == [oracle.random() for _ in range(count)]

    @given(seed=_SEEDS, split=st.integers(min_value=0, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_handoff_continues_the_exact_stream(self, seed, split):
        """Draw a block, hand off to random.Random, keep drawing:
        the combined stream equals the oracle's — including stateful
        stdlib consumers like shuffle."""
        oracle = random.Random(seed)
        oracle_head = [oracle.random() for _ in range(split)]
        oracle_order = list(range(10))
        oracle.shuffle(oracle_order)

        stream = DrawStream(seed)
        head = stream.block(split).tolist()
        handed = stream.to_python()
        order = list(range(10))
        handed.shuffle(order)

        assert head == oracle_head
        assert order == oracle_order

    @given(seed=_SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_seed_key_matches_cpython_state(self, seed):
        """mt_seed_key reproduces random.Random(seed)'s exact MT state."""
        oracle_state = random.Random(seed).getstate()[1]
        replicated = DrawStream(seed)._state.get_state()
        assert tuple(int(k) for k in replicated[1]) + (
            int(replicated[2]),
        ) == oracle_state

    def test_seed_key_small_ints(self):
        # The numpy legacy-seeding trap: list keys take init_by_array,
        # scalar/ndarray seeds do not.  Pin the exact cases that caught it.
        for seed in (0, 1, 42, -7, 2**31, 2**64 + 5):
            oracle = random.Random(seed)
            assert DrawStream(seed).block(3).tolist() == [
                oracle.random() for _ in range(3)
            ]
        assert mt_seed_key(0) == [0]


class TestForgetKernels:
    @given(
        initial=_PROBS,
        observed=st.lists(_PROBS, max_size=32),
        beta=st.floats(min_value=0.0, max_value=1.0),
        cap_one=st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_forget_scan_matches_repeated_forget(
        self, initial, observed, beta, cap_one
    ):
        estimate = initial
        oracle = []
        for value in observed:
            estimate = forget(estimate, value, beta)
            if cap_one:
                estimate = min(1.0, estimate)
            oracle.append(estimate)
        assert forget_scan(initial, observed, beta, cap_one=cap_one) == oracle

    @given(
        rows=st.integers(min_value=1, max_value=8),
        data=st.data(),
        betas=st.tuples(*([st.floats(min_value=0.0, max_value=1.0)] * 4)),
    )
    @settings(max_examples=60, deadline=None)
    def test_trust_update_columns_matches_updater(self, rows, data, betas):
        import numpy as np

        updater = ForgettingUpdater(*betas)
        expected = [
            data.draw(st.tuples(_PROBS, *([_MAGNITUDES] * 3)))
            for _ in range(rows)
        ]
        observed = [
            data.draw(st.tuples(_PROBS, *([_MAGNITUDES] * 3)))
            for _ in range(rows)
        ]
        oracle = [
            updater.update(OutcomeFactors(*old), OutcomeFactors(*new))
            for old, new in zip(expected, observed)
        ]
        columns = trust_update_columns(
            tuple(np.array(col) for col in zip(*expected)),
            tuple(np.array(col) for col in zip(*observed)),
            betas,
        )
        vectorized = [
            OutcomeFactors(*row) for row in zip(*(c.tolist() for c in columns))
        ]
        assert vectorized == oracle

    @given(
        draws=st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=32),
        threshold=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_bernoulli_block_matches_scalar_compare(self, draws, threshold):
        import numpy as np

        assert bernoulli_block(np.array(draws), threshold).tolist() == [
            1.0 if value < threshold else 0.0 for value in draws
        ]


class TestRanking:
    @given(
        scores=st.lists(
            st.floats(allow_nan=True, allow_infinity=True), max_size=16
        )
    )
    @settings(max_examples=120, deadline=None)
    def test_rank_order_matches_pair_sort(self, scores):
        """Including NaN scores and the empty list: the oracle's stable
        pair-sort permutation, exactly."""
        oracle = [
            index for index, _score in sorted(
                enumerate(scores), key=lambda pair: pair[1], reverse=True
            )
        ]
        assert rank_order(scores) == oracle

    @given(
        rows=st.lists(
            st.tuples(_PROBS, _MAGNITUDES, _MAGNITUDES, _MAGNITUDES),
            max_size=12,
        ),
        policy=st.sampled_from([
            SuccessRatePolicy(), NetProfitPolicy(), GainOnlyPolicy(),
        ]),
    )
    @settings(max_examples=120, deadline=None)
    def test_score_columns_matches_scalar_policy(self, rows, policy):
        """Bit-equality (via repr, so NaN == NaN) of vector scores
        against per-candidate policy.score — inf-stake NaNs included."""
        factors = [OutcomeFactors(*row) for row in rows]
        oracle = [policy.score(f) for f in factors]
        scores = score_columns(policy, *factor_columns(factors))
        assert scores is not None
        assert [repr(s) for s in scores.tolist()] == [
            repr(s) for s in oracle
        ]

    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        count=st.integers(min_value=0, max_value=10),
        policy=st.sampled_from([
            SuccessRatePolicy(), NetProfitPolicy(), GainOnlyPolicy(),
        ]),
    )
    @settings(max_examples=40, deadline=None)
    def test_engine_ranking_identical_across_backends(
        self, seed, count, policy
    ):
        """End to end through DelegationEngine over random stores and
        candidate orderings, empty candidate lists included."""
        rng = random.Random(seed)
        task = Task("sensing", characteristics=("sensor",))
        trustor = TrustorAgent(
            node_id="alice",
            behavior=ResponsibleTrustorBehavior(responsibility=1.0),
        )
        candidates = [
            TrusteeAgent(
                node_id=f"t{i}",
                behavior=HonestTrusteeBehavior(competence=0.5),
            )
            for i in range(count)
        ]
        for trustee in candidates:
            trustor.store.set_expected(
                trustee.node_id, task,
                OutcomeFactors(
                    success_rate=rng.random(),
                    gain=rng.uniform(0.0, 5.0),
                    damage=rng.random(),
                    cost=rng.random(),
                ),
            )
        rng.shuffle(candidates)
        python_rank = DelegationEngine(
            policy=policy, compute="python"
        ).rank_candidates(trustor, task, candidates)
        vector_rank = DelegationEngine(
            policy=policy, compute="vectorized"
        ).rank_candidates(trustor, task, candidates)
        assert [
            (t.node_id, score) for t, score in vector_rank
        ] == [
            (t.node_id, score) for t, score in python_rank
        ]


class TestChainCombiners:
    @given(
        chains=st.integers(min_value=0, max_value=8),
        length=st.integers(min_value=0, max_value=6),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_columns_match_scalar_folds(self, chains, length, data):
        hop = st.floats(min_value=0.0, max_value=1.0)
        matrix = [
            [data.draw(hop) for _ in range(length)] for _ in range(chains)
        ]
        import numpy as np

        hops = np.array(matrix, dtype=float).reshape(chains, length)
        assert combine_chain_columns(hops).tolist() == [
            combine_chain(row) for row in matrix
        ]
        assert traditional_chain_columns(hops).tolist() == [
            traditional_chain(row) for row in matrix
        ]
