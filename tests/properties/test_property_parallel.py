"""Property-based equivalence of the parallel and sequential runners.

Thread-backed pools keep each hypothesis example cheap; the process
backend is covered deterministically in ``tests/simulation``.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.simulation.parallel import ParallelRunner
from repro.simulation.results import RateSummary, SeriesResult
from repro.simulation.runner import average_rates, average_series

seed_lists = st.lists(
    st.integers(min_value=0, max_value=10**9),
    min_size=1, max_size=8,
)
worker_counts = st.integers(min_value=1, max_value=4)


def synthetic_rates(seed: int) -> RateSummary:
    """A deterministic, irrational-valued per-seed result.

    ``math.sin`` keeps the floats messy enough that any reduction-order
    difference between the two paths would show up in the lowest bits.
    """
    return RateSummary(
        success_rate=abs(math.sin(seed * 0.7)),
        unavailable_rate=abs(math.sin(seed * 1.3)) / 2.0,
        abuse_rate=abs(math.sin(seed * 2.1)) / 3.0,
        total_requests=seed % 1000,
    )


def synthetic_series(seed: int) -> SeriesResult:
    return SeriesResult(
        "synthetic", [math.sin(seed * k * 0.37) for k in range(5)]
    )


def ragged_series(seed: int) -> SeriesResult:
    return SeriesResult("ragged", [0.0] * (seed % 4 + 1))


class TestRunnerEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(seeds=seed_lists, workers=worker_counts)
    def test_rates_one_worker_vs_sequential_vs_n_workers(self, seeds, workers):
        oracle = average_rates(synthetic_rates, seeds)
        one = ParallelRunner(workers=1).average_rates(synthetic_rates, seeds)
        many = ParallelRunner(
            workers=workers, backend="thread"
        ).average_rates(synthetic_rates, seeds)
        assert oracle == one == many

    @settings(max_examples=40, deadline=None)
    @given(seeds=seed_lists, workers=worker_counts)
    def test_series_one_worker_vs_sequential_vs_n_workers(self, seeds, workers):
        oracle = average_series(synthetic_series, seeds)
        one = ParallelRunner(workers=1).average_series(synthetic_series, seeds)
        many = ParallelRunner(
            workers=workers, backend="thread"
        ).average_series(synthetic_series, seeds)
        assert oracle == one == many

    @settings(max_examples=25, deadline=None)
    @given(seeds=seed_lists, workers=worker_counts)
    def test_per_seed_results_identical_and_ordered(self, seeds, workers):
        sequential = [synthetic_series(seed) for seed in seeds]
        parallel = ParallelRunner(
            workers=workers, backend="thread"
        ).map_seeds(synthetic_series, seeds)
        assert parallel == sequential


class TestRaggedRejection:
    @settings(max_examples=25, deadline=None)
    @given(seeds=seed_lists, workers=worker_counts)
    def test_both_paths_agree_on_ragged_series(self, seeds, workers):
        lengths = {len(ragged_series(seed).values) for seed in seeds}
        runner = ParallelRunner(workers=workers, backend="thread")
        if len(lengths) == 1:
            assert runner.average_series(
                ragged_series, seeds
            ) == average_series(ragged_series, seeds)
            return
        with pytest.raises(ValueError, match="lengths"):
            average_series(ragged_series, seeds)
        with pytest.raises(ValueError, match="lengths"):
            runner.average_series(ragged_series, seeds)
