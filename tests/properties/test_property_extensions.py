"""Property-based tests for the extension modules (attacks, time decay,
goals, energy, graph stats)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attacks import CredibilityWeightedAggregator, Recommendation
from repro.core.goal import ActualResult, Goal, alignment, revise_expectation
from repro.core.records import OutcomeFactors
from repro.core.timedecay import DecayingTrustLedger, decay_weight
from repro.iotnet.energy import EnergyMeter, EnergyProfile
from repro.socialnet.graph import SocialGraph
from repro.socialnet.stats import (
    degree_assortativity,
    k_core_decomposition,
)

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestAggregatorProperties:
    @given(st.lists(st.tuples(st.text(min_size=1, max_size=4), unit),
                    min_size=1, max_size=10))
    def test_aggregate_bounded_by_claims(self, claims):
        aggregator = CredibilityWeightedAggregator(
            default_credibility=0.8, credibility_floor=0.3
        )
        recommendations = [
            Recommendation(recommender=f"r{i}-{name}", about="t",
                           claimed=value)
            for i, (name, value) in enumerate(claims)
        ]
        result = aggregator.aggregate(recommendations)
        values = [r.claimed for r in recommendations]
        assert result is not None
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9

    @given(unit, unit, unit)
    def test_credibility_update_stays_in_range(self, claimed, observed,
                                               start):
        aggregator = CredibilityWeightedAggregator(
            credibility={"r": start}
        )
        refreshed = aggregator.update_credibility("r", claimed, observed)
        assert 0.0 <= refreshed <= 1.0

    @given(unit, unit)
    def test_perfect_claims_never_lower_credibility_below_start(
        self, observed, start
    ):
        aggregator = CredibilityWeightedAggregator(
            credibility={"r": start}
        )
        refreshed = aggregator.update_credibility("r", observed, observed)
        assert refreshed >= start - 1e-9


class TestTimeDecayProperties:
    @given(st.lists(st.tuples(unit, st.floats(min_value=0, max_value=100,
                                              allow_nan=False)),
                    min_size=1, max_size=20))
    def test_ledger_trust_bounded(self, observations):
        ledger = DecayingTrustLedger(decay=0.9)
        observations.sort(key=lambda pair: pair[1])
        for value, time in observations:
            ledger.observe("x", value, time)
        now = observations[-1][1]
        trust = ledger.trust("x", now=now)
        values = [value for value, _ in observations]
        assert min(values) - 1e-9 <= trust <= max(values) + 1e-9

    @given(st.floats(min_value=0, max_value=50, allow_nan=False),
           st.floats(min_value=0.01, max_value=1.0, allow_nan=False))
    def test_decay_weight_monotone_in_age(self, age, decay):
        assert decay_weight(age + 1.0, decay) <= decay_weight(age, decay)


class TestGoalProperties:
    outcome_lists = st.lists(
        st.sampled_from(["a", "b", "c", "d"]), unique=True,
        min_size=1, max_size=4,
    )

    @given(outcome_lists, st.lists(
        st.sampled_from(["e", "f", "g"]), unique=True, max_size=3))
    def test_alignment_partitions_outcomes(self, required, extra):
        goal = Goal("g", required=required)
        actual = ActualResult(tuple(required) + tuple(extra))
        result = alignment(goal, actual)
        assert result.achieved == frozenset(required)
        assert result.side_effects == frozenset(extra)
        assert not result.missing

    @given(outcome_lists, unit, unit, unit, unit)
    def test_revision_never_raises_gain(self, required, s, g, d, c):
        goal = Goal("g", required=required)
        expected = OutcomeFactors(success_rate=s, gain=g, damage=d, cost=c)
        # Worst case: nothing achieved.
        result = alignment(goal, ActualResult(()))
        revised = revise_expectation(expected, result)
        assert revised.gain <= expected.gain + 1e-12
        assert revised.damage >= expected.damage - 1e-12


class TestEnergyProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1000,
                              allow_nan=False), max_size=20))
    def test_consumption_monotone(self, durations):
        meter = EnergyMeter()
        previous = 0.0
        for duration in durations:
            meter.receive(duration)
            assert meter.consumed_mj >= previous
            previous = meter.consumed_mj

    @given(st.floats(min_value=0, max_value=10_000, allow_nan=False))
    def test_remaining_plus_consumed_covers_budget(self, duration):
        meter = EnergyMeter(budget_mj=100.0)
        meter.transmit(duration)
        assert meter.remaining_mj >= 0.0
        assert meter.remaining_mj <= meter.budget_mj


@st.composite
def small_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    graph = SocialGraph()
    for node in range(n):
        graph.add_node(node)
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    for u, v in draw(st.lists(st.sampled_from(possible), max_size=20)):
        graph.add_edge(u, v)
    return graph


class TestStatsProperties:
    @given(small_graphs())
    @settings(max_examples=50)
    def test_assortativity_in_range(self, graph):
        assert -1.0 - 1e-9 <= degree_assortativity(graph) <= 1.0 + 1e-9

    @given(small_graphs())
    @settings(max_examples=50)
    def test_core_number_bounded_by_degree(self, graph):
        core = k_core_decomposition(graph)
        for node in graph.nodes():
            assert 0 <= core[node] <= graph.degree(node)

    @given(small_graphs())
    @settings(max_examples=50)
    def test_core_is_total(self, graph):
        assert set(k_core_decomposition(graph)) == set(graph.nodes())
