"""Property test for the retry/quarantine state machine (Hypothesis).

The contract, for *any* mix of healthy, poison, and flaky seeds and any
chunking: the sweep terminates, every healthy seed's result is
bit-identical to the sequential oracle, and ``failed_seeds`` together
with the succeeded seeds exactly partitions the submitted seed set —
no seed lost, no seed double-counted.
"""

import os
import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.simulation import registry
from repro.simulation.distributed import WorkQueue, worker_loop

SCENARIO = "fig15-environment"
BUDGET = 2

# healthy | poison (always raises) | flaky-pass (fails BUDGET-1
# attempts, then succeeds) | flaky-fail (outlasts the budget).
_BEHAVIORS = st.sampled_from(
    ["healthy", "poison", "flaky-pass", "flaky-fail"]
)

_ORACLE = {}


def _oracle(seed):
    if seed not in _ORACLE:
        _ORACLE[seed] = registry.get(SCENARIO).run(seed, smoke=True)
    return _ORACLE[seed]


def _fault_env(plan):
    specs = []
    for seed, behavior in plan.items():
        if behavior == "poison":
            specs.append(f"raise:{seed}")
        elif behavior == "flaky-pass":
            specs.append(f"flaky:{seed}:{BUDGET - 1}")
        elif behavior == "flaky-fail":
            specs.append(f"flaky:{seed}:{BUDGET + 2}")
    return ",".join(specs)


class TestRetryQuarantinePartition:
    @given(
        behaviors=st.lists(_BEHAVIORS, min_size=2, max_size=4),
        chunk_size=st.integers(min_value=1, max_value=3),
    )
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_failed_and_succeeded_partition_the_seed_set(
        self, behaviors, chunk_size
    ):
        plan = {seed: b for seed, b in enumerate(behaviors, start=1)}
        seeds = sorted(plan)
        expected_failed = {
            seed for seed, behavior in plan.items()
            if behavior in ("poison", "flaky-fail")
        }
        spec = registry.get(SCENARIO)
        previous = os.environ.get("REPRO_WORKER_FAULT")
        with tempfile.TemporaryDirectory() as root:
            queue = WorkQueue.create(
                Path(root) / "queue", SCENARIO,
                spec.params_key(smoke=True), seeds, chunk_size,
                max_attempts=BUDGET,
            )
            os.environ["REPRO_WORKER_FAULT"] = _fault_env(plan)
            try:
                worker_loop(Path(root) / "queue", None, drain=True)
            finally:
                if previous is None:
                    os.environ.pop("REPRO_WORKER_FAULT", None)
                else:
                    os.environ["REPRO_WORKER_FAULT"] = previous
            assert queue.is_complete()  # the sweep terminated
            results, failures, _ = queue.collect()

        # Exact partition: succeeded ∪ failed == seeds, disjoint.
        assert set(results) | set(failures) == set(seeds)
        assert set(results) & set(failures) == set()
        assert set(failures) == expected_failed
        # Healthy (and recovered-flaky) seeds match the oracle's bits.
        for seed in results:
            assert results[seed] == _oracle(seed)
        # Every failure record is attributable and budget-bounded.
        for seed, record in failures.items():
            assert record["seed"] == seed
            assert record["error_type"] == "InjectedFaultError"
            assert 1 <= record["attempts"] <= BUDGET
