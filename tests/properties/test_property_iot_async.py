"""Hypothesis properties of the async IoT exchange backend.

Three invariants, over random topologies, workloads and seeds:

* **Equivalence** — the async backend reproduces the sync oracle's
  device state (active times, energy totals, inboxes) exactly, for any
  topology/seed/queue capacity;
* **Experiment equivalence** — the Figs. 8/14 experiments publish
  bit-identical trust/cost series under either backend;
* **Conservation** — cancellation/timeout paths never lose frames:
  every created frame is delivered-and-processed or counted dropped.
"""

from hypothesis import given, settings, strategies as st

from repro.iotnet.aio import ExchangeRequest, exchange_engine
from repro.iotnet.experiments import ActiveTimeExperiment, InferenceExperiment
from repro.iotnet.messages import FrameKind
from repro.iotnet.network import ExperimentalNetwork

topologies = st.fixed_dictionaries({
    "groups": st.integers(min_value=1, max_value=2),
    "trustors_per_group": st.integers(min_value=1, max_value=2),
    "honest_per_group": st.integers(min_value=1, max_value=2),
    "dishonest_per_group": st.integers(min_value=0, max_value=2),
})


def build_network(shape, seed, layout="compact"):
    network = ExperimentalNetwork(seed=seed, layout=layout, **shape)
    network.attach_energy(budget_mj=1e9)
    return network


def random_workload(network, rng_seed, timeouts=False):
    """A seeded random workload over every device pair direction."""
    import random

    rng = random.Random(repr(("iot-property-workload", rng_seed)))
    devices = network.all_devices
    requests = []
    for _ in range(rng.randint(1, 12)):
        source, destination = rng.sample(devices, 2)
        requests.append(ExchangeRequest(
            source=source.device_id,
            destination=destination.device_id,
            payload=rng.choice("xyz") * rng.randint(0, 120),
            max_fragment_size=rng.choice((4, 16, 64)),
            kind=rng.choice(list(FrameKind)),
            timeout_ms=(
                rng.choice((None, 0.0, 10.0, 50.0)) if timeouts else None
            ),
        ))
    return requests


def device_state(network):
    return {
        device.device_id: (
            device.active_time_ms,
            device.energy.consumed_mj,
            tuple(device.inbox),
        )
        for device in network.all_devices
    }


@settings(max_examples=20, deadline=None)
@given(shape=topologies, seed=st.integers(0, 2**16),
       capacity=st.integers(1, 8))
def test_sync_async_device_state_identical(shape, seed, capacity):
    states = {}
    for backend in ("sync", "async"):
        network = build_network(shape, seed)
        engine = exchange_engine(
            backend, network=network, seed=seed, queue_capacity=capacity,
        )
        engine.run_exchanges(random_workload(network, seed))
        states[backend] = device_state(network)
    assert states["sync"] == states["async"]


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**16), tasks=st.integers(1, 3))
def test_activetime_trust_values_identical(seed, tasks):
    """Final expected-cost ("trust") series match bit for bit."""
    sync = ActiveTimeExperiment(tasks_per_trustor=tasks, seed=seed).run()
    aio = ActiveTimeExperiment(
        tasks_per_trustor=tasks, seed=seed, backend="async"
    ).run()
    assert sync.with_model == aio.with_model
    assert sync.without_model == aio.without_model


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_inference_selections_identical(seed):
    sync = InferenceExperiment(runs=2, seed=seed).run()
    aio = InferenceExperiment(runs=2, seed=seed, backend="async").run()
    assert sync.with_model == aio.with_model
    assert sync.without_model == aio.without_model


@settings(max_examples=25, deadline=None)
@given(shape=topologies, seed=st.integers(0, 2**16),
       capacity=st.integers(1, 4))
def test_timeouts_never_lose_frames(shape, seed, capacity):
    """Conservation under cancellation: created == delivered + dropped,
    and every delivered frame is processed by its receiver."""
    network = build_network(shape, seed)
    engine = exchange_engine(
        "async", network=network, seed=seed, queue_capacity=capacity,
    )
    requests = random_workload(network, seed, timeouts=True)
    reports = engine.run_exchanges(requests)
    accounting = engine.accounting
    assert len(reports) == len(requests)
    assert accounting.frames_created == (
        accounting.frames_delivered + accounting.frames_dropped
    )
    assert accounting.frames_processed == accounting.frames_delivered
    accounting.verify()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_async_run_is_reproducible(seed):
    """Same seed, same workload -> byte-identical device state."""
    outcomes = []
    for _ in range(2):
        network = build_network(
            {"groups": 1, "trustors_per_group": 2, "honest_per_group": 1,
             "dishonest_per_group": 1}, seed,
        )
        engine = exchange_engine("async", network=network, seed=seed)
        engine.run_exchanges(random_workload(network, seed, timeouts=True))
        outcomes.append(device_state(network))
    assert outcomes[0] == outcomes[1]
