"""Unit tests for the deterministic asyncio exchange stack."""

import asyncio

import pytest

from repro.iotnet.aio import (
    AsyncExchangeEngine,
    ExchangeRequest,
    FrameQueue,
    StalledExchangeError,
    SyncExchangeEngine,
    _Kernel,
    exchange_engine,
)
from repro.iotnet.device import NodeDevice
from repro.iotnet.messages import FrameKind
from repro.iotnet.network import ExperimentalNetwork, UnknownDeviceError
from repro.iotnet.radio import RadioChannel


def small_network(seed: int = 0) -> ExperimentalNetwork:
    return ExperimentalNetwork(
        groups=1, trustors_per_group=1, honest_per_group=1,
        dishonest_per_group=1, seed=seed,
    )


class TestKernel:
    def test_sleep_orders_by_virtual_time(self):
        log = []

        async def sleeper(kernel, delay, tag):
            await kernel.sleep(delay)
            log.append((tag, kernel.now))

        async def main():
            kernel = _Kernel(seed=0)
            tasks = [
                kernel.spawn(sleeper(kernel, 30.0, "slow")),
                kernel.spawn(sleeper(kernel, 10.0, "fast")),
                kernel.spawn(sleeper(kernel, 20.0, "mid")),
            ]
            await kernel.drive(tasks)
            return kernel.now

        final = asyncio.run(main())
        assert log == [("fast", 10.0), ("mid", 20.0), ("slow", 30.0)]
        assert final == 30.0

    def test_same_tick_ordering_is_seeded_and_reproducible(self):
        def run(seed):
            log = []

            async def sleeper(kernel, tag):
                await kernel.sleep(5.0)
                log.append(tag)

            async def main():
                kernel = _Kernel(seed=seed)
                tasks = [
                    kernel.spawn(sleeper(kernel, tag)) for tag in range(6)
                ]
                await kernel.drive(tasks)

            asyncio.run(main())
            return log

        assert run(3) == run(3)  # deterministic for a fixed seed
        orders = {tuple(run(seed)) for seed in range(8)}
        assert len(orders) > 1  # the tie-break really is seed-driven

    def test_negative_sleep_rejected(self):
        async def main():
            kernel = _Kernel(seed=0)
            await kernel.sleep(-1.0)

        with pytest.raises(ValueError):
            asyncio.run(main())

    def test_stall_detected_instead_of_hanging(self):
        async def main():
            kernel = _Kernel(seed=0)

            async def waits_forever():
                fut = asyncio.get_running_loop().create_future()
                await kernel._park(fut)

            task = kernel.spawn(waits_forever())
            await kernel.drive([task])

        with pytest.raises(StalledExchangeError):
            asyncio.run(main())


class TestFrameQueue:
    def test_fifo_and_backpressure(self):
        async def main():
            kernel = _Kernel(seed=0)
            queue = FrameQueue(kernel, maxsize=2)
            consumed = []

            async def producer():
                for item in range(5):
                    await queue.put(item)

            async def consumer():
                for _ in range(5):
                    consumed.append(await queue.get())
                    await kernel.sleep(1.0)  # slower than the producer

            tasks = [kernel.spawn(producer()), kernel.spawn(consumer())]
            await kernel.drive(tasks)
            return consumed

        assert asyncio.run(main()) == [0, 1, 2, 3, 4]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FrameQueue(_Kernel(seed=0), maxsize=0)


class TestEngineFactory:
    def test_backend_names(self):
        network = small_network()
        assert exchange_engine("sync", network=network).backend == "sync"
        assert exchange_engine("async", network=network).backend == "async"
        with pytest.raises(ValueError):
            exchange_engine("turbo", network=network)

    def test_exactly_one_address_space(self):
        network = small_network()
        with pytest.raises(ValueError):
            exchange_engine("sync")
        with pytest.raises(ValueError):
            exchange_engine(
                "sync", network=network, devices=network.node_devices
            )

    def test_devices_iterable_and_mapping(self):
        channel = RadioChannel()
        a = NodeDevice("a", channel, x=0.0, y=0.0)
        b = NodeDevice("b", channel, x=10.0, y=0.0)
        for devices in ([a, b], {"a": a, "b": b}):
            engine = exchange_engine("async", devices=devices)
            [report] = engine.run_exchanges(
                [ExchangeRequest("a", "b", "hello")]
            )
            assert report.delivered
        assert b.inbox.count("hello") == 2


class TestUnknownDestination:
    """The silent-drop fix: unknown ids raise (or are counted), never no-op."""

    @pytest.mark.parametrize("backend", ["sync", "async"])
    def test_raises_by_default(self, backend):
        network = small_network()
        engine = exchange_engine(backend, network=network)
        with pytest.raises(UnknownDeviceError):
            engine.run_exchanges(
                [ExchangeRequest("g0-trustor-0", "ghost", "boo")]
            )

    @pytest.mark.parametrize("backend", ["sync", "async"])
    def test_count_mode_accounts_and_continues(self, backend):
        network = small_network()
        engine = exchange_engine(backend, network=network,
                                 on_unknown="count")
        reports = engine.run_exchanges([
            ExchangeRequest("g0-trustor-0", "ghost", "boo"),
            ExchangeRequest("g0-trustor-0", "g0-honest-0", "hello"),
        ])
        assert len(reports) == 2
        assert not reports[0].delivered and reports[0].frames == 0
        assert reports[1].delivered
        assert engine.accounting.unroutable_exchanges == 1
        assert network.device("g0-honest-0").inbox == ["hello"]


class TestSyncEngineGuards:
    def test_timeout_ms_rejected_loudly(self):
        """The oracle cannot time out mid-exchange; silently ignoring
        the field would break sync/async bit-identity untraceably."""
        engine = exchange_engine("sync", network=small_network())
        with pytest.raises(ValueError, match="timeout_ms"):
            engine.run_exchanges([
                ExchangeRequest("g0-trustor-0", "g0-honest-0", "x",
                                timeout_ms=10.0),
            ])

    def test_misaddressed_batch_mutates_nothing(self):
        """Both engines resolve up front: a bad destination anywhere in
        the batch raises before any device state changes."""
        for backend in ("sync", "async"):
            network = small_network()
            engine = exchange_engine(backend, network=network)
            with pytest.raises(UnknownDeviceError):
                engine.run_exchanges([
                    ExchangeRequest("g0-trustor-0", "g0-honest-0", "ok"),
                    ExchangeRequest("g0-trustor-0", "ghost", "boo"),
                ])
            for device in network.all_devices:
                assert device.active_time_ms == 0.0
                assert device.inbox == []


class TestSyncEngineAccounting:
    def test_sync_accounting_balances_and_verifies(self):
        network = small_network()
        engine = exchange_engine("sync", network=network)
        engine.run_exchanges([
            ExchangeRequest("g0-trustor-0", "g0-honest-0", "a" * 100,
                            max_fragment_size=16),
        ])
        accounting = engine.accounting
        assert accounting.frames_created == 7
        assert accounting.frames_delivered == 7
        assert accounting.frames_processed == 7
        assert accounting.frames_dropped == 0
        accounting.verify()  # the documented self-check must pass


class TestAsyncEngine:
    def test_empty_batch(self):
        engine = exchange_engine("async", network=small_network())
        engine.run_exchanges([
            ExchangeRequest("g0-trustor-0", "g0-honest-0", "warm-up"),
        ])
        assert engine.last_virtual_ms > 0.0
        assert engine.run_exchanges([]) == []
        # An empty flush must not report the previous flush's makespan.
        assert engine.last_virtual_ms == 0.0

    def test_matches_sync_oracle_on_small_batch(self):
        results = {}
        for backend in ("sync", "async"):
            network = small_network(seed=4)
            engine = exchange_engine(backend, network=network, seed=4)
            reports = engine.run_exchanges([
                ExchangeRequest("g0-trustor-0", "g0-honest-0", "x" * 100,
                                max_fragment_size=16),
                ExchangeRequest("g0-honest-0", "g0-trustor-0", "y" * 50),
                ExchangeRequest("g0-dishonest-0", "coordinator", "z" * 10,
                                kind=FrameKind.REPORT),
            ])
            results[backend] = (
                reports,
                {d.device_id: (d.active_time_ms, tuple(d.inbox))
                 for d in network.all_devices},
            )
        assert results["sync"] == results["async"]

    def test_accounting_balances(self):
        network = small_network()
        engine = exchange_engine("async", network=network)
        engine.run_exchanges([
            ExchangeRequest("g0-trustor-0", "g0-honest-0", "a" * 200,
                            max_fragment_size=8),
        ])
        accounting = engine.accounting
        assert accounting.frames_created == 25
        assert accounting.frames_delivered == 25
        assert accounting.frames_dropped == 0
        assert accounting.frames_processed == 25
        accounting.verify()  # does not raise

    def test_timeout_drops_are_counted_not_lost(self):
        network = small_network()
        engine = exchange_engine("async", network=network)
        [report] = engine.run_exchanges([
            ExchangeRequest("g0-trustor-0", "g0-honest-0", "a" * 200,
                            max_fragment_size=8, timeout_ms=20.0),
        ])
        accounting = engine.accounting
        assert not report.delivered
        assert accounting.timed_out_exchanges == 1
        assert accounting.frames_dropped > 0
        assert (accounting.frames_created
                == accounting.frames_delivered + accounting.frames_dropped)
        accounting.verify()
        # The partial message never completes, so no inbox delivery.
        assert network.device("g0-honest-0").inbox == []

    def test_timeout_is_per_exchange_not_per_batch(self):
        """The budget starts when the exchange starts transmitting, so
        identical requests behave identically at any batch position."""
        network = small_network()
        engine = exchange_engine("async", network=network)
        template = dict(payload="a" * 64, max_fragment_size=16,
                        timeout_ms=1000.0)
        reports = engine.run_exchanges([
            ExchangeRequest("g0-trustor-0", "g0-honest-0", **template),
            ExchangeRequest("g0-dishonest-0", "coordinator", **template),
            ExchangeRequest("g0-honest-0", "g0-trustor-0", **template),
        ])
        assert [r.delivered for r in reports] == [True, True, True]
        assert engine.accounting.timed_out_exchanges == 0

    def test_zero_timeout_drops_everything(self):
        network = small_network()
        engine = exchange_engine("async", network=network)
        [report] = engine.run_exchanges([
            ExchangeRequest("g0-trustor-0", "g0-honest-0", "hello",
                            timeout_ms=0.0),
        ])
        assert not report.delivered
        assert engine.accounting.frames_delivered == 0
        assert engine.accounting.frames_dropped == 1
        engine.accounting.verify()

    def test_deterministic_virtual_makespan(self):
        def run():
            network = small_network(seed=2)
            engine = exchange_engine("async", network=network, seed=2)
            engine.run_exchanges([
                ExchangeRequest("g0-trustor-0", "g0-honest-0", "m" * 64),
                ExchangeRequest("g0-honest-0", "g0-trustor-0", "n" * 64),
            ])
            return engine.last_virtual_ms

        first, second = run(), run()
        assert first == second > 0.0

    def test_overlap_shortens_virtual_makespan(self):
        """Concurrent receiver processing beats the serial sum."""
        network = small_network(seed=0)
        engine = exchange_engine("async", network=network, seed=0)
        requests = [
            ExchangeRequest("g0-trustor-0", "g0-honest-0", "p" * 120,
                            max_fragment_size=16),
            ExchangeRequest("g0-dishonest-0", "coordinator", "q" * 120,
                            max_fragment_size=16),
        ]
        reports = engine.run_exchanges(requests)
        serial_sum = sum(
            r.sender_active_ms + r.receiver_active_ms for r in reports
        )
        assert engine.last_virtual_ms < serial_sum

    def test_queue_capacity_one_still_identical(self):
        def run(backend, capacity=8):
            network = small_network(seed=5)
            engine = exchange_engine(backend, network=network, seed=5,
                                     queue_capacity=capacity)
            engine.run_exchanges([
                ExchangeRequest("g0-trustor-0", "g0-honest-0", "w" * 150,
                                max_fragment_size=8),
            ])
            return {d.device_id: (d.active_time_ms, tuple(d.inbox))
                    for d in network.all_devices}

        assert run("sync") == run("async", capacity=1) == run("async")


class TestSyncEngineReportTotals:
    def test_totals_snapshot_accumulators(self):
        network = small_network()
        engine = SyncExchangeEngine(network.device)
        trustor = network.device("g0-trustor-0")
        honest = network.device("g0-honest-0")
        [first, second] = engine.run_exchanges([
            ExchangeRequest("g0-trustor-0", "g0-honest-0", "one"),
            ExchangeRequest("g0-honest-0", "g0-trustor-0", "two"),
        ])
        assert first.sender_total_before_ms == 0.0
        assert first.sender_total_after_ms == pytest.approx(
            first.sender_active_ms
        )
        # The response's receiver is the trustor again: its "after" is
        # the final accumulator value.
        assert second.receiver_total_after_ms == trustor.active_time_ms
        assert honest.active_time_ms == (
            first.receiver_total_after_ms
            + (second.sender_total_after_ms - second.sender_total_before_ms)
        )


class TestAsyncEngineValidation:
    def test_bad_queue_capacity(self):
        with pytest.raises(ValueError):
            AsyncExchangeEngine(small_network().device, queue_capacity=0)

    def test_bad_on_unknown(self):
        with pytest.raises(ValueError):
            AsyncExchangeEngine(small_network().device, on_unknown="ignore")

    def test_bad_request_fields(self):
        with pytest.raises(ValueError):
            ExchangeRequest("a", "b", "x", max_fragment_size=0)
        with pytest.raises(ValueError):
            ExchangeRequest("a", "b", "x", timeout_ms=-1.0)
