"""Backend-switch tests: Figs. 8/14/16 sync vs async, bit-identical."""

import pytest

from repro.iotnet.experiments import (
    ActiveTimeExperiment,
    InferenceExperiment,
    LightingExperiment,
)
from repro.iotnet.network import ExperimentalNetwork
from repro.iotnet.sensors import LightEnvironment, LightPhase
from repro.simulation import registry

SHORT_SCHEDULE = LightEnvironment([
    LightPhase(4, 500.0, "LIGHT"),
    LightPhase(4, 15.0, "DARK"),
    LightPhase(4, 500.0, "LIGHT"),
])


class TestBackendSwitch:
    def test_default_backend_is_sync(self):
        assert InferenceExperiment(runs=1).backend == "sync"
        assert ActiveTimeExperiment(tasks_per_trustor=1).backend == "sync"
        assert LightingExperiment(schedule=SHORT_SCHEDULE).backend == "sync"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            InferenceExperiment(runs=1, backend="turbo")


@pytest.mark.parametrize("seed", [0, 3, 11])
class TestSyncAsyncBitIdentical:
    def test_fig8_inference(self, seed):
        sync = InferenceExperiment(runs=4, seed=seed).run()
        aio = InferenceExperiment(runs=4, seed=seed, backend="async").run()
        assert sync.with_model == aio.with_model
        assert sync.without_model == aio.without_model

    def test_fig14_activetime(self, seed):
        sync = ActiveTimeExperiment(tasks_per_trustor=4, seed=seed).run()
        aio = ActiveTimeExperiment(
            tasks_per_trustor=4, seed=seed, backend="async"
        ).run()
        assert sync.with_model == aio.with_model
        assert sync.without_model == aio.without_model

    def test_fig16_lighting(self, seed):
        sync = LightingExperiment(schedule=SHORT_SCHEDULE, seed=seed).run()
        aio = LightingExperiment(
            schedule=SHORT_SCHEDULE, seed=seed, backend="async"
        ).run()
        assert sync.with_model == aio.with_model
        assert sync.without_model == aio.without_model
        assert sync.labels == aio.labels

    def test_fig14_device_state_identical(self, seed):
        """Not just the published series: the whole network agrees."""
        states = {}
        for backend in ("sync", "async"):
            network = ExperimentalNetwork(seed=seed)
            ActiveTimeExperiment(
                network=network, tasks_per_trustor=3, seed=seed,
                backend=backend,
            ).run()
            states[backend] = {
                d.device_id: (d.active_time_ms, tuple(d.inbox))
                for d in network.all_devices
            }
        assert states["sync"] == states["async"]


@pytest.mark.parametrize("pair", [
    ("fig8-inference", "fig8-inference-async"),
    ("fig14-activetime", "fig14-activetime-async"),
    ("fig16-light", "fig16-light-async"),
])
def test_registry_async_variant_bit_identical(pair):
    """The registered async scenarios reduce to the exact sync values,
    so any sweep over them is interchangeable with the sync sweep."""
    sync_name, async_name = pair
    sync_spec = registry.get(sync_name)
    async_spec = registry.get(async_name)
    for seed in (1, 2):
        assert sync_spec.run(seed, smoke=True) == (
            async_spec.run(seed, smoke=True)
        )


def test_lighting_reports_reach_coordinator():
    """Fig. 16 now exchanges real report frames (both backends)."""
    network = ExperimentalNetwork(seed=2)
    LightingExperiment(
        network=network, schedule=SHORT_SCHEDULE, seed=2,
    ).run()
    # 10 trustors x 12 experiments x 2 policies.
    assert len(network.coordinator.collected_reports) == 240
