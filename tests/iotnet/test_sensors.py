"""Tests for optical sensors and the light schedule."""

import pytest

from repro.iotnet.sensors import (
    DEFAULT_LIGHT_SCHEDULE,
    LightEnvironment,
    LightPhase,
    OpticalSensor,
)


class TestLightEnvironment:
    def test_default_schedule_is_light_dark_light(self):
        env = LightEnvironment()
        labels = env.labels()
        assert labels[0] == "LIGHT"
        assert labels[20] == "DARK"
        assert labels[-1] == "LIGHT"
        assert len(labels) == 50

    def test_lux_follows_phases(self):
        env = LightEnvironment()
        assert env.lux_at(0) == 500.0
        assert env.lux_at(15) == 15.0
        assert env.lux_at(35) == 500.0

    def test_past_end_holds_last_phase(self):
        env = LightEnvironment()
        assert env.lux_at(1000) == 500.0

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            LightEnvironment().lux_at(-1)

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            LightEnvironment(phases=())

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            LightPhase(experiments=0, lux=100.0)
        with pytest.raises(ValueError):
            LightPhase(experiments=1, lux=-5.0)

    def test_total_experiments(self):
        env = LightEnvironment([LightPhase(3, 10.0), LightPhase(4, 20.0)])
        assert env.total_experiments == 7


class TestOpticalSensor:
    def test_full_light_performance_is_one(self):
        sensor = OpticalSensor(full_lux=400.0)
        assert sensor.performance(400.0) == 1.0
        assert sensor.performance(9000.0) == 1.0

    def test_darkness_hits_floor(self):
        sensor = OpticalSensor(floor=0.15)
        assert sensor.performance(0.0) == pytest.approx(0.15)

    def test_performance_monotone_in_light(self):
        sensor = OpticalSensor()
        values = [sensor.performance(lux) for lux in (0, 50, 150, 300, 400)]
        assert values == sorted(values)

    def test_environment_indicator_in_unit_interval(self):
        sensor = OpticalSensor()
        for lux in (0.0, 15.0, 200.0, 500.0):
            indicator = sensor.environment_indicator(lux)
            assert 0.0 < indicator <= 1.0

    def test_negative_lux_rejected(self):
        with pytest.raises(ValueError):
            OpticalSensor().performance(-1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            OpticalSensor(full_lux=0.0)
        with pytest.raises(ValueError):
            OpticalSensor(floor=0.0)
