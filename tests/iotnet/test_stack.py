"""Tests for the five-layer Z-Stack pipeline."""

import pytest

from repro.iotnet.messages import Frame
from repro.iotnet.stack import DEFAULT_LAYERS, LayerSpec, ZStack


@pytest.fixture
def stack() -> ZStack:
    return ZStack()


def frame(payload="x" * 20) -> Frame:
    return Frame(source="a", destination="b", payload=payload)


class TestLayers:
    def test_default_layers_match_zstack(self, stack):
        # Z-Stack 2.5.0's five layers in top-down order.
        assert stack.layer_names == ["ZDO", "AF", "APS", "NWK", "ZMAC"]

    def test_empty_stack_rejected(self):
        with pytest.raises(ValueError):
            ZStack(layers=())

    def test_layer_validation(self):
        with pytest.raises(ValueError):
            LayerSpec("bad", header_bytes=-1, latency_ms=0.0)
        with pytest.raises(ValueError):
            LayerSpec("bad", header_bytes=0, latency_ms=-0.1)


class TestTraversal:
    def test_send_down_visits_top_to_bottom(self, stack):
        trace = stack.send_down(frame())
        assert trace.visited == ["ZDO", "AF", "APS", "NWK", "ZMAC"]
        assert trace.direction == "down"

    def test_receive_up_visits_bottom_to_top(self, stack):
        trace = stack.receive_up(frame())
        assert trace.visited == ["ZMAC", "NWK", "APS", "AF", "ZDO"]

    def test_latency_is_sum_of_layers(self, stack):
        trace = stack.send_down(frame())
        assert trace.latency_ms == pytest.approx(
            sum(layer.latency_ms for layer in DEFAULT_LAYERS)
        )
        assert trace.latency_ms == pytest.approx(stack.per_frame_latency_ms)

    def test_up_and_down_cost_the_same(self, stack):
        down = stack.send_down(frame())
        up = stack.receive_up(frame())
        assert down.latency_ms == pytest.approx(up.latency_ms)

    def test_overhead_is_total_headers(self, stack):
        trace = stack.send_down(frame())
        assert trace.overhead_bytes == stack.total_header_bytes

    def test_on_air_bytes(self, stack):
        f = frame(payload="x" * 10)
        assert stack.on_air_bytes(f) == 10 + stack.total_header_bytes

    def test_per_frame_latency_is_fragmentation_lever(self, stack):
        # N fragments cost N traversals: the Fig. 14 attack's mechanism.
        one = stack.per_frame_latency_ms
        assert 60 * one > 10 * (one * 5)
