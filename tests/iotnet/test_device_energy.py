"""Tests for per-device energy accounting through message exchanges."""

import pytest

from repro.iotnet.device import NodeDevice
from repro.iotnet.energy import EnergyMeter, EnergyProfile
from repro.iotnet.radio import RadioChannel


@pytest.fixture
def channel():
    return RadioChannel(seed=0)


class TestDeviceEnergy:
    def test_no_meter_no_accounting(self, channel):
        a = NodeDevice("a", channel, x=0, y=0)
        b = NodeDevice("b", channel, x=10, y=0)
        a.send_message(b, "hello")
        assert a.energy is None and b.energy is None

    def test_exchange_charges_both_sides(self, channel):
        a = NodeDevice("a", channel, x=0, y=0, energy=EnergyMeter())
        b = NodeDevice("b", channel, x=10, y=0, energy=EnergyMeter())
        a.send_message(b, "x" * 100)
        assert a.energy.consumed_mj > 0.0
        assert b.energy.consumed_mj > 0.0

    def test_fragmentation_attack_drains_receiver_battery(self, channel):
        sender1 = NodeDevice("s1", channel, x=0, y=0,
                             energy=EnergyMeter())
        victim = NodeDevice("v", channel, x=10, y=0,
                            energy=EnergyMeter())
        sender2 = NodeDevice("s2", channel, x=0, y=5,
                             energy=EnergyMeter())
        normal = NodeDevice("n", channel, x=10, y=5,
                            energy=EnergyMeter())
        payload = "x" * 400
        sender1.send_message(victim, payload, max_fragment_size=4)
        sender2.send_message(normal, payload, max_fragment_size=64)
        assert victim.energy.consumed_mj > 5 * normal.energy.consumed_mj

    def test_depletion_via_traffic(self, channel):
        tiny = EnergyMeter(budget_mj=0.5,
                           profile=EnergyProfile(rx_mw=1000.0,
                                                 cpu_mw=1000.0))
        a = NodeDevice("a", channel, x=0, y=0)
        b = NodeDevice("b", channel, x=10, y=0, energy=tiny)
        for _ in range(5):
            a.send_message(b, "x" * 200, max_fragment_size=8)
        assert b.energy.depleted
        assert b.energy.willingness() == 0.0

    def test_mixed_metered_and_unmetered(self, channel):
        a = NodeDevice("a", channel, x=0, y=0, energy=EnergyMeter())
        b = NodeDevice("b", channel, x=10, y=0)  # no meter
        report = a.send_message(b, "hello")
        assert report.delivered
        assert a.energy.consumed_mj > 0.0
