"""Tests for the device energy model."""

import pytest

from repro.iotnet.energy import EnergyMeter, EnergyProfile, account_exchange


class TestEnergyProfile:
    def test_defaults_follow_datasheet_ordering(self):
        profile = EnergyProfile()
        assert profile.tx_mw > profile.rx_mw > profile.cpu_mw \
            > profile.sleep_mw

    def test_negative_draw_rejected(self):
        with pytest.raises(ValueError):
            EnergyProfile(tx_mw=-1.0)


class TestEnergyMeter:
    def test_energy_is_power_times_time(self):
        meter = EnergyMeter(profile=EnergyProfile(tx_mw=100.0))
        spent = meter.transmit(duration_ms=50.0)
        assert spent == pytest.approx(5.0)  # 100 mW * 0.05 s
        assert meter.consumed_mj == pytest.approx(5.0)

    def test_states_accumulate(self):
        meter = EnergyMeter()
        meter.transmit(10.0)
        meter.receive(10.0)
        meter.compute(10.0)
        meter.sleep(1000.0)
        assert meter.consumed_mj > 0.0

    def test_remaining_clamps_at_zero(self):
        meter = EnergyMeter(budget_mj=1.0,
                            profile=EnergyProfile(tx_mw=1000.0))
        meter.transmit(10_000.0)
        assert meter.remaining_mj == 0.0
        assert meter.depleted

    def test_remaining_fraction(self):
        meter = EnergyMeter(budget_mj=10.0,
                            profile=EnergyProfile(tx_mw=100.0))
        meter.transmit(50.0)  # 5 mJ
        assert meter.remaining_fraction == pytest.approx(0.5)

    def test_willingness_tracks_battery(self):
        meter = EnergyMeter(budget_mj=10.0,
                            profile=EnergyProfile(tx_mw=100.0))
        assert meter.willingness() == 1.0
        meter.transmit(50.0)
        assert meter.willingness() == pytest.approx(0.5)
        meter.transmit(100.0)
        assert meter.willingness() == 0.0

    def test_zero_budget_unwilling(self):
        meter = EnergyMeter(budget_mj=0.0)
        assert meter.willingness() == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            EnergyMeter().transmit(-1.0)

    def test_sleep_is_cheap(self):
        meter = EnergyMeter()
        awake = meter.compute(100.0)
        asleep = meter.sleep(100.0)
        assert asleep < awake / 1000.0


class TestAccountExchange:
    def test_both_sides_charged(self):
        sender = EnergyMeter()
        receiver = EnergyMeter()
        result = account_exchange(sender, receiver,
                                  sender_active_ms=100.0,
                                  receiver_active_ms=80.0)
        assert result["sender_mj"] > 0.0
        assert result["receiver_mj"] > 0.0
        assert sender.consumed_mj == pytest.approx(result["sender_mj"])

    def test_fragmentation_attack_costs_receiver_energy(self):
        # The Fig. 14 attack, expressed in energy: a receiver kept
        # active 8x longer burns roughly 8x the energy.
        short = EnergyMeter()
        long = EnergyMeter()
        account_exchange(EnergyMeter(), short, 10.0, 50.0)
        account_exchange(EnergyMeter(), long, 10.0, 400.0)
        assert long.consumed_mj == pytest.approx(8 * short.consumed_mj,
                                                 rel=0.01)

    def test_invalid_tx_share_rejected(self):
        with pytest.raises(ValueError):
            account_exchange(EnergyMeter(), EnergyMeter(), 1.0, 1.0,
                             tx_share=1.5)
