"""Tests for frames and fragmentation."""

import pytest

from repro.iotnet.messages import (
    Frame,
    FrameKind,
    Reassembler,
    fragment_payload,
)


class TestFrame:
    def test_size_bytes_utf8(self):
        frame = Frame(source="a", destination="b", payload="abc")
        assert frame.size_bytes == 3

    def test_invalid_fragment_count(self):
        with pytest.raises(ValueError):
            Frame(source="a", destination="b", payload="x",
                  fragment_count=0)

    def test_fragment_index_out_of_range(self):
        with pytest.raises(ValueError):
            Frame(source="a", destination="b", payload="x",
                  fragment_index=2, fragment_count=2)

    def test_unique_message_ids(self):
        a = Frame(source="a", destination="b", payload="x")
        b = Frame(source="a", destination="b", payload="x")
        assert a.message_id != b.message_id


class TestFragmentation:
    def test_single_fragment_when_payload_fits(self):
        frames = fragment_payload("a", "b", "short", max_fragment_size=64)
        assert len(frames) == 1
        assert frames[0].fragment_count == 1

    def test_fragment_count(self):
        frames = fragment_payload("a", "b", "x" * 100, max_fragment_size=30)
        assert len(frames) == 4  # 30+30+30+10

    def test_tiny_fragments_multiply_frames(self):
        honest = fragment_payload("a", "b", "x" * 240, max_fragment_size=64)
        attack = fragment_payload("a", "b", "x" * 240, max_fragment_size=4)
        assert len(attack) > 10 * len(honest)

    def test_empty_payload_one_frame(self):
        frames = fragment_payload("a", "b", "", max_fragment_size=8)
        assert len(frames) == 1
        assert frames[0].payload == ""

    def test_fragments_share_message_id(self):
        frames = fragment_payload("a", "b", "x" * 50, max_fragment_size=10)
        assert len({f.message_id for f in frames}) == 1

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            fragment_payload("a", "b", "x", max_fragment_size=0)

    def test_kind_propagates(self):
        frames = fragment_payload("a", "b", "x" * 10, 4,
                                  kind=FrameKind.RESPONSE)
        assert all(f.kind is FrameKind.RESPONSE for f in frames)


class TestReassembler:
    def test_roundtrip_identity(self):
        payload = "hello world " * 20
        frames = fragment_payload("a", "b", payload, max_fragment_size=7)
        completed = Reassembler().accept_all(frames)
        assert completed == [payload]

    def test_out_of_order_reassembly(self):
        payload = "abcdefghij"
        frames = fragment_payload("a", "b", payload, max_fragment_size=3)
        completed = Reassembler().accept_all(reversed(frames))
        assert completed == [payload]

    def test_interleaved_messages(self):
        first = fragment_payload("a", "b", "1" * 9, max_fragment_size=3)
        second = fragment_payload("a", "b", "2" * 9, max_fragment_size=3)
        interleaved = [
            frame for pair in zip(first, second) for frame in pair
        ]
        completed = Reassembler().accept_all(interleaved)
        assert sorted(completed) == ["1" * 9, "2" * 9]

    def test_incomplete_message_pending(self):
        frames = fragment_payload("a", "b", "x" * 9, max_fragment_size=3)
        reassembler = Reassembler()
        assert reassembler.accept(frames[0]) is None
        assert reassembler.pending_messages == 1

    def test_unfragmented_frame_immediate(self):
        frame = Frame(source="a", destination="b", payload="solo")
        assert Reassembler().accept(frame) == "solo"
