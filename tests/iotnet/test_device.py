"""Tests for node devices and the coordinator."""

import pytest

from repro.iotnet.device import Coordinator, NodeDevice
from repro.iotnet.messages import FrameKind
from repro.iotnet.radio import RadioChannel


@pytest.fixture
def channel() -> RadioChannel:
    return RadioChannel(seed=0)


@pytest.fixture
def pair(channel):
    a = NodeDevice("a", channel, x=0.0, y=0.0)
    b = NodeDevice("b", channel, x=10.0, y=0.0)
    return a, b


class TestMessaging:
    def test_message_arrives_in_inbox(self, pair):
        a, b = pair
        report = a.send_message(b, "hello")
        assert report.delivered
        assert b.drain_inbox() == ["hello"]

    def test_drain_empties_inbox(self, pair):
        a, b = pair
        a.send_message(b, "hello")
        b.drain_inbox()
        assert b.drain_inbox() == []

    def test_fragmented_message_reassembled(self, pair):
        a, b = pair
        payload = "0123456789" * 30
        a.send_message(b, payload, max_fragment_size=7)
        assert b.drain_inbox() == [payload]

    def test_active_time_accumulates_on_both_sides(self, pair):
        a, b = pair
        a.send_message(b, "x" * 100)
        assert a.active_time_ms > 0
        assert b.active_time_ms > 0

    def test_fragmentation_inflates_active_time(self, channel):
        a = NodeDevice("s1", channel, x=0, y=0)
        b = NodeDevice("r1", channel, x=10, y=0)
        c = NodeDevice("s2", channel, x=0, y=5)
        d = NodeDevice("r2", channel, x=10, y=5)
        payload = "x" * 240
        a.send_message(b, payload, max_fragment_size=64)
        c.send_message(d, payload, max_fragment_size=4)
        assert d.active_time_ms > 5 * b.active_time_ms

    def test_out_of_range_not_delivered(self, channel):
        a = NodeDevice("a", channel, x=0, y=0)
        far = NodeDevice("far", channel, x=1000, y=0)
        report = a.send_message(far, "hello")
        assert not report.delivered
        assert far.drain_inbox() == []

    def test_reset_active_time(self, pair):
        a, b = pair
        a.send_message(b, "x")
        a.reset_active_time()
        assert a.active_time_ms == 0.0


class TestCoordinator:
    def test_start_network_picks_valid_channel(self, channel):
        coordinator = Coordinator(channel, seed=4)
        parameters = coordinator.start_network()
        assert 11 <= parameters.channel <= 26
        assert 0x0001 <= parameters.pan_id <= 0xFFFE

    def test_admit_requires_started_network(self, channel):
        coordinator = Coordinator(channel)
        device = NodeDevice("d", channel, x=10, y=0)
        with pytest.raises(RuntimeError):
            coordinator.admit(device)

    def test_admit_requires_range(self, channel):
        coordinator = Coordinator(channel)
        coordinator.start_network()
        far = NodeDevice("far", channel, x=9999, y=0)
        with pytest.raises(ValueError, match="range"):
            coordinator.admit(far)

    def test_admit_registers_device(self, channel):
        coordinator = Coordinator(channel)
        coordinator.start_network()
        device = NodeDevice("d", channel, x=10, y=0)
        coordinator.admit(device)
        assert "d" in coordinator.admitted

    def test_receive_reports_parses_sender(self, channel):
        coordinator = Coordinator(channel)
        coordinator.start_network()
        device = NodeDevice("d", channel, x=10, y=0)
        device.send_message(coordinator, "d:result=42",
                            kind=FrameKind.REPORT)
        reports = coordinator.receive_reports()
        assert reports == [("d", "result=42")]
