"""Tests for the three IoT experiments (Figs. 8, 14, 16 shapes)."""

import pytest

from repro.iotnet.experiments import (
    ActiveTimeExperiment,
    InferenceExperiment,
    LightingExperiment,
)
from repro.iotnet.network import ExperimentalNetwork
from repro.iotnet.sensors import LightEnvironment, LightPhase


class TestInferenceExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return InferenceExperiment(runs=30, seed=11).run()

    def test_series_lengths(self, result):
        assert len(result.with_model) == 30
        assert len(result.without_model) == 30

    def test_with_model_beats_without(self, result):
        # Fig. 8's headline: inference finds the honest devices.
        assert result.mean_with() > result.mean_without() + 20.0

    def test_without_model_is_near_chance(self, result):
        # Blind choice among 2 honest + 2 dishonest -> ~50%.
        assert 30.0 <= result.mean_without() <= 70.0

    def test_with_model_high(self, result):
        assert result.mean_with() >= 85.0

    def test_percentages_in_range(self, result):
        for value in result.with_model + result.without_model:
            assert 0.0 <= value <= 100.0

    def test_reports_reach_coordinator(self):
        network = ExperimentalNetwork(seed=5)
        experiment = InferenceExperiment(network=network, runs=2, seed=5)
        experiment.run()
        # 10 trustors x 2 runs reports collected.
        assert len(network.coordinator.collected_reports) == 20

    def test_deterministic(self):
        a = InferenceExperiment(runs=5, seed=9).run()
        b = InferenceExperiment(runs=5, seed=9).run()
        assert a.with_model == b.with_model


class TestActiveTimeExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return ActiveTimeExperiment(tasks_per_trustor=40, seed=11).run()

    def test_series_lengths(self, result):
        assert len(result.with_model) == 40
        assert len(result.without_model) == 40

    def test_without_model_stays_high(self, result):
        head = sum(result.without_model[:5]) / 5
        tail = sum(result.without_model[-5:]) / 5
        assert tail >= 0.8 * head

    def test_with_model_detects_attack(self, result):
        # Fig. 14: active time shortens once costs are evaluated.
        head = sum(result.with_model[:3]) / 3
        tail = sum(result.with_model[-10:]) / 10
        assert tail < 0.4 * head

    def test_with_model_ends_below_without(self, result):
        assert result.with_model[-1] < 0.5 * result.without_model[-1]

    def test_active_times_positive(self, result):
        for value in result.with_model + result.without_model:
            assert value > 0.0


class TestLightingExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return LightingExperiment(seed=11).run()

    def test_series_cover_schedule(self, result):
        assert len(result.with_model) == 50
        assert len(result.labels) == 50

    def test_final_light_phase_recovery(self, result):
        # Fig. 16: with the environment factor the net profit returns to
        # a high level after the dark period; without it, it does not.
        with_mean = result.final_phase_mean(result.with_model)
        without_mean = result.final_phase_mean(result.without_model)
        assert with_mean > without_mean

    def test_first_light_phase_similar(self, result):
        # Before the dark period both policies behave alike.
        first_with = sum(result.with_model[:15]) / 15
        first_without = sum(result.without_model[:15]) / 15
        assert first_with == pytest.approx(first_without, rel=0.35)

    def test_dark_phase_is_depressed(self, result):
        dark = [
            value for value, label in zip(result.with_model, result.labels)
            if label == "DARK"
        ]
        light_first = result.with_model[:15]
        assert max(dark) < sum(light_first) / len(light_first)

    def test_custom_schedule(self):
        schedule = LightEnvironment([
            LightPhase(5, 500.0, "LIGHT"),
            LightPhase(5, 10.0, "DARK"),
            LightPhase(5, 500.0, "LIGHT"),
        ])
        result = LightingExperiment(schedule=schedule, seed=2).run()
        assert len(result.with_model) == 15
