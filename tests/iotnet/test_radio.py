"""Tests for the radio channel."""

import pytest

from repro.iotnet.messages import Frame
from repro.iotnet.radio import RadioChannel, RadioConfig


@pytest.fixture
def channel() -> RadioChannel:
    ch = RadioChannel(seed=1)
    ch.place("a", 0.0, 0.0)
    ch.place("b", 30.0, 40.0)     # 50 m away: reliable, no retries
    ch.place("far", 400.0, 0.0)   # out of range
    ch.place("edge", 200.0, 0.0)  # between reconnect and reliable range
    return ch


def frame(src="a", dst="b", payload="x" * 10) -> Frame:
    return Frame(source=src, destination=dst, payload=payload)


class TestGeometry:
    def test_distance(self, channel):
        assert channel.distance("a", "b") == pytest.approx(50.0)

    def test_unplaced_device_rejected(self, channel):
        with pytest.raises(KeyError):
            channel.distance("a", "ghost")

    def test_in_range(self, channel):
        assert channel.in_range("a", "b")
        assert not channel.in_range("a", "far")

    def test_replace_moves_device(self, channel):
        channel.place("b", 0.0, 10.0)
        assert channel.distance("a", "b") == pytest.approx(10.0)


class TestTransmit:
    def test_within_reconnect_range_no_retries(self, channel):
        delivery = channel.transmit(frame())
        assert delivery.delivered
        assert delivery.retries == 0

    def test_out_of_range_dropped(self, channel):
        delivery = channel.transmit(frame(dst="far"))
        assert not delivery.delivered
        assert delivery.latency_ms == 0.0

    def test_latency_grows_with_payload(self, channel):
        small = channel.transmit(frame(payload="x"))
        large = channel.transmit(frame(payload="x" * 500))
        assert large.latency_ms > small.latency_ms

    def test_marginal_link_can_retry(self, channel):
        # Statistically some of many transmissions on a marginal link retry.
        retries = sum(
            channel.transmit(frame(dst="edge")).retries for _ in range(200)
        )
        assert retries > 0

    def test_marginal_retries_bounded(self, channel):
        for _ in range(200):
            delivery = channel.transmit(frame(dst="edge"))
            assert delivery.retries <= 5


class TestConfig:
    def test_reconnect_must_not_exceed_reliable(self):
        with pytest.raises(ValueError):
            RadioConfig(reliable_range_m=100.0, reconnect_range_m=150.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            RadioConfig(base_latency_ms=-1.0)

    def test_retry_probability_range(self):
        with pytest.raises(ValueError):
            RadioConfig(retry_probability=1.5)
