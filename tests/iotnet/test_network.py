"""Tests for the 5-group experimental topology."""

import pytest

from repro.iotnet.network import ExperimentalNetwork, UnknownDeviceError


@pytest.fixture(scope="module")
def network() -> ExperimentalNetwork:
    return ExperimentalNetwork(seed=0)


class TestTopology:
    def test_five_groups(self, network):
        assert len(network.groups) == 5

    def test_group_composition(self, network):
        for group in network.groups:
            assert len(group.trustors) == 2
            assert len(group.honest_trustees) == 2
            assert len(group.dishonest_trustees) == 2

    def test_thirty_devices_plus_coordinator(self, network):
        assert len(network.trustors) == 10
        assert len(network.trustees) == 20
        assert network.coordinator.network_parameters is not None

    def test_all_devices_admitted(self, network):
        assert len(network.coordinator.admitted) == 30

    def test_device_lookup(self, network):
        device = network.device("g0-trustor-0")
        assert device.device_id == "g0-trustor-0"
        assert network.device("coordinator") is network.coordinator

    def test_unknown_device_rejected(self, network):
        with pytest.raises(KeyError):
            network.device("ghost")

    def test_group_of(self, network):
        group = network.group_of("g2-honest-1")
        assert group.index == 2

    def test_group_of_unknown_rejected(self, network):
        with pytest.raises(KeyError):
            network.group_of("ghost")

    def test_honesty_classification(self, network):
        assert network.is_honest_trustee("g0-honest-0")
        assert not network.is_honest_trustee("g0-dishonest-0")
        assert not network.is_honest_trustee("g0-trustor-0")

    def test_all_devices_in_coordinator_range(self, network):
        for device in network.trustors + network.trustees:
            assert network.channel.in_range(
                "coordinator", device.device_id
            )

    def test_reset_active_times(self, network):
        trustor = network.trustors[0]
        trustee = network.trustees[0]
        trustor.send_message(trustee, "ping")
        network.reset_active_times()
        assert trustor.active_time_ms == 0.0
        assert trustee.active_time_ms == 0.0

    def test_invalid_group_count_rejected(self):
        with pytest.raises(ValueError):
            ExperimentalNetwork(groups=0)

    def test_membership_protocol(self, network):
        assert "coordinator" in network
        assert "g0-trustor-0" in network
        assert "ghost" not in network

    def test_device_listings(self, network):
        assert len(network.node_devices) == 30
        assert len(network.all_devices) == 31
        assert network.all_devices[0] is network.coordinator


class TestUnknownDeviceRegression:
    """Delivery to an unknown device id must raise, never no-op.

    ``UnknownDeviceError`` subclasses ``KeyError`` so pre-existing
    callers catching ``KeyError`` keep working, but the failure is now
    a named contract the exchange engines propagate (or count as
    unroutable) instead of a silent drop.
    """

    def test_device_lookup_raises_typed_error(self):
        network = ExperimentalNetwork(seed=0)
        with pytest.raises(UnknownDeviceError):
            network.device("ghost")

    def test_unknown_device_error_is_a_key_error(self):
        assert issubclass(UnknownDeviceError, KeyError)

    def test_group_of_unknown_raises_typed_error(self):
        network = ExperimentalNetwork(seed=0)
        with pytest.raises(UnknownDeviceError):
            network.group_of("ghost")

    def test_misaddressed_exchange_raises_through_engines(self):
        from repro.iotnet.aio import ExchangeRequest, exchange_engine

        network = ExperimentalNetwork(seed=0)
        for backend in ("sync", "async"):
            engine = exchange_engine(backend, network=network)
            with pytest.raises(UnknownDeviceError):
                engine.run_exchanges(
                    [ExchangeRequest("g0-trustor-0", "ghost", "lost?")]
                )


class TestCompactLayout:
    def test_everything_in_range_at_scale(self):
        network = ExperimentalNetwork(
            groups=40, trustors_per_group=3, honest_per_group=3,
            dishonest_per_group=2, layout="compact", seed=0,
        )
        devices = network.all_devices
        assert len(devices) == 321
        channel = network.channel
        # Spot-check the extremes: first, middle and last devices all
        # reach each other (the spiral bounds any pair within 230 m).
        sample = [devices[0], devices[1], devices[160], devices[-1]]
        for a in sample:
            for b in sample:
                if a is not b:
                    assert channel.in_range(a.device_id, b.device_id)

    def test_paper_layout_overflows_radio_range_at_scale(self):
        # The seed grid walks out of the coordinator's range past ~6
        # groups — the compact layout exists precisely for this.
        with pytest.raises(ValueError):
            ExperimentalNetwork(groups=40, layout="paper")

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError):
            ExperimentalNetwork(layout="hexgrid")

    def test_attach_energy_covers_every_device(self):
        network = ExperimentalNetwork(
            groups=1, layout="compact", seed=0
        )
        network.attach_energy(budget_mj=5.0, keep_ledger=True)
        for device in network.all_devices:
            assert device.energy is not None
            assert device.energy.budget_mj == 5.0
            assert device.energy.ledger == []
