"""Tests for the 5-group experimental topology."""

import pytest

from repro.iotnet.network import ExperimentalNetwork


@pytest.fixture(scope="module")
def network() -> ExperimentalNetwork:
    return ExperimentalNetwork(seed=0)


class TestTopology:
    def test_five_groups(self, network):
        assert len(network.groups) == 5

    def test_group_composition(self, network):
        for group in network.groups:
            assert len(group.trustors) == 2
            assert len(group.honest_trustees) == 2
            assert len(group.dishonest_trustees) == 2

    def test_thirty_devices_plus_coordinator(self, network):
        assert len(network.trustors) == 10
        assert len(network.trustees) == 20
        assert network.coordinator.network_parameters is not None

    def test_all_devices_admitted(self, network):
        assert len(network.coordinator.admitted) == 30

    def test_device_lookup(self, network):
        device = network.device("g0-trustor-0")
        assert device.device_id == "g0-trustor-0"
        assert network.device("coordinator") is network.coordinator

    def test_unknown_device_rejected(self, network):
        with pytest.raises(KeyError):
            network.device("ghost")

    def test_group_of(self, network):
        group = network.group_of("g2-honest-1")
        assert group.index == 2

    def test_group_of_unknown_rejected(self, network):
        with pytest.raises(KeyError):
            network.group_of("ghost")

    def test_honesty_classification(self, network):
        assert network.is_honest_trustee("g0-honest-0")
        assert not network.is_honest_trustee("g0-dishonest-0")
        assert not network.is_honest_trustee("g0-trustor-0")

    def test_all_devices_in_coordinator_range(self, network):
        for device in network.trustors + network.trustees:
            assert network.channel.in_range(
                "coordinator", device.device_id
            )

    def test_reset_active_times(self, network):
        trustor = network.trustors[0]
        trustee = network.trustees[0]
        trustor.send_message(trustee, "ping")
        network.reset_active_times()
        assert trustor.active_time_ms == 0.0
        assert trustee.active_time_ms == 0.0

    def test_invalid_group_count_rejected(self):
        with pytest.raises(ValueError):
            ExperimentalNetwork(groups=0)
