"""Golden determinism suite: the async backend replays the sync oracle.

For fixed seeds and topologies of 1 / 8 / 64 (and 1000, marked slow)
devices, the canonical workload is captured under both backends and the
serialized observable state — per-frame radio traces, per-device active
times, inboxes, energy totals and itemized ledgers, per-exchange
reports — must match **byte for byte**.  There is no tolerance: the
async stack's contract is bit-identical replay, same as the sweep
runtime's (PR 1/PR 2) contract against its sequential oracle.
"""

import json

import pytest

from repro.iotnet.golden import capture, exchange_workload, make_topology

SEEDS = [0, 11]
TIER1_SIZES = [1, 8, 64]


@pytest.mark.parametrize("devices", TIER1_SIZES)
@pytest.mark.parametrize("seed", SEEDS)
def test_async_reproduces_sync_byte_for_byte(devices, seed):
    sync = capture(devices, seed=seed, backend="sync")
    aio = capture(devices, seed=seed, backend="async")
    assert sync.blob == aio.blob


@pytest.mark.slow
def test_thousand_device_golden():
    """The ROADMAP "thousands of devices" scale, still bit-identical."""
    sync = capture(1000, seed=1, backend="sync")
    aio = capture(1000, seed=1, backend="async")
    assert sync.blob == aio.blob
    assert sync.frames == aio.frames > 1000


@pytest.mark.parametrize("backend", ["sync", "async"])
def test_capture_is_deterministic(backend):
    first = capture(8, seed=5, backend=backend)
    second = capture(8, seed=5, backend=backend)
    assert first.blob == second.blob


def test_different_seeds_differ():
    assert capture(8, seed=0, backend="sync").blob != (
        capture(8, seed=1, backend="sync").blob
    )


def test_async_queue_capacity_is_result_neutral():
    """Backpressure changes scheduling, never results."""
    baseline = capture(8, seed=3, backend="async", queue_capacity=8)
    tight = capture(8, seed=3, backend="async", queue_capacity=1)
    assert baseline.blob == tight.blob


def test_capture_observes_everything():
    """The golden blob really contains traces, ledgers and inboxes."""
    state = json.loads(capture(8, seed=0, backend="sync").blob)
    assert set(state) == {"devices", "frames", "reports"}
    assert len(state["devices"]) == 9  # 8 nodes + coordinator
    assert state["frames"], "radio journal must record transmissions"
    for entry in state["frames"]:
        assert {"source", "destination", "kind", "message_id", "fragment",
                "size_bytes", "delivered", "latency_ms",
                "retries"} <= set(entry)
    for device_state in state["devices"].values():
        assert device_state["ledger"] is not None


def test_workload_covers_every_device():
    network = make_topology(8, seed=0)
    requests = exchange_workload(network, seed=0)
    sources = {request.source for request in requests}
    assert sources == {d.device_id for d in network.node_devices}


def test_far_links_exercise_retries():
    """The compact spiral leaves some links past the 110 m reconnect
    range, so the seeded retry path is part of what the goldens pin."""
    state = json.loads(capture(64, seed=0, backend="sync").blob)
    assert any(entry["retries"] > 0 for entry in state["frames"])
