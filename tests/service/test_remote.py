"""Tests for :class:`repro.service.RemoteClient` — the facade mirror
and the satellite error paths: 400 bodies surface validation messages,
cancelled jobs report a terminal state, and a dead server is a clear
connection error, never a hang."""

import threading
import time

import pytest

from repro.api import CancelledError, ExecutionProfile, SweepSpec
from repro.analysis.export import sweep_to_payload
from repro.service import (
    JobServer,
    RemoteClient,
    ServiceConnectionError,
    ServiceError,
)
from repro.simulation.sweep import SweepFailureError, execute_sweep

SPEC = SweepSpec("fig7-mutuality", seeds=[1, 2], smoke=True)


def _values(payload):
    """A sweep export payload without the run-dependent blocks."""
    trimmed = dict(payload)
    trimmed.pop("timing")
    trimmed.pop("cache")
    trimmed.pop("seed_runtimes", None)
    return trimmed


@pytest.fixture(scope="module")
def server():
    with JobServer(profile=ExecutionProfile(no_cache=True)) as srv:
        yield srv


@pytest.fixture
def remote(server):
    return RemoteClient(server.url, poll_interval=0.02)


class TestFacadeMirror:
    def test_submit_returns_a_real_sweep_result(self, remote):
        handle = remote.submit(SPEC)
        sweep = handle.result(timeout=60)
        oracle = execute_sweep(SPEC, ExecutionProfile(no_cache=True))
        assert _values(sweep_to_payload(sweep)) == _values(
            sweep_to_payload(oracle)
        )
        assert sweep.mean == oracle.mean
        assert sweep.per_seed == oracle.per_seed
        assert handle.status() == "done"
        assert handle.done() is True

    def test_run_convenience(self, remote):
        sweep = remote.run(SPEC, timeout=60)
        assert sweep.scenario == "fig7-mutuality"
        assert sweep.seeds == [1, 2]

    def test_campaign_round_trip(self, remote):
        specs = [
            SweepSpec("fig7-mutuality", seeds=[1], smoke=True),
            SweepSpec("fig7-mutuality", seeds=[2], smoke=True),
        ]
        handle = remote.submit_campaign(specs, name="pair")
        campaign = handle.result(timeout=60)
        assert campaign.labels == ("fig7-mutuality", "fig7-mutuality#2")
        assert campaign.specs == tuple(specs)
        completed, total = handle.progress()
        assert (completed, total) == (2, 2)
        oracle = execute_sweep(specs[1], ExecutionProfile(no_cache=True))
        assert _values(
            sweep_to_payload(campaign.by_label()["fig7-mutuality#2"])
        ) == _values(sweep_to_payload(oracle))

    def test_campaign_write_exports(self, remote, tmp_path):
        handle = remote.submit_campaign(
            [SweepSpec("fig7-mutuality", seeds=[1], smoke=True)]
        )
        campaign = handle.result(timeout=60)
        paths = campaign.write_exports(tmp_path / "exports")
        assert [path.name for path in paths] == ["fig7-mutuality.json"]

    def test_job_reattach(self, remote):
        handle = remote.submit(SPEC)
        again = remote.job(handle.job_id)
        assert again.result(timeout=60).seeds == [1, 2]
        assert handle.job_id in [job["id"] for job in remote.jobs()]

    def test_reattach_unknown_job_is_404(self, remote):
        with pytest.raises(ServiceError) as excinfo:
            remote.job("job-999999")
        assert excinfo.value.status == 404

    def test_base_url_normalization(self, server):
        host, port = server.address
        client = RemoteClient(f"{host}:{port}")  # no scheme
        assert client.health()["status"] == "ok"

    def test_rejects_non_spec_types(self, remote):
        with pytest.raises(TypeError):
            remote.submit(42)


class TestErrorPaths:
    def test_malformed_spec_payload_surfaces_validation_message(
        self, remote
    ):
        """Satellite: 400 body carries the server-side validation
        message, verbatim enough to act on."""
        with pytest.raises(ServiceError) as excinfo:
            remote.submit({"scenario": "fig99-nope", "seeds": [1]})
        assert excinfo.value.status == 400
        assert "unknown scenario 'fig99-nope'" in str(excinfo.value)
        assert "fig7-mutuality" in str(excinfo.value)

        with pytest.raises(ServiceError) as excinfo:
            remote.submit({"scenario": "fig7-mutuality", "seeds": []})
        assert excinfo.value.status == 400
        assert "at least one seed" in str(excinfo.value)

        with pytest.raises(ServiceError) as excinfo:
            remote.submit(
                {"scenario": "fig7-mutuality", "seeds": [1],
                 "surprise": True},
            )
        assert excinfo.value.status == 400
        assert "surprise" in str(excinfo.value)

    def test_invalid_profile_payload_is_400(self, remote):
        """The server rejects a contradictory profile with the shared
        :func:`validate_execution` message."""
        with pytest.raises(ServiceError) as excinfo:
            remote._request("POST", "/v1/sweeps", {
                "spec": SPEC.to_payload(),
                "profile": {"no_cache": True, "cache_dir": "/tmp/x"},
            })
        assert excinfo.value.status == 400
        assert "no_cache" in str(excinfo.value)

    def test_sweep_failure_error_crosses_the_wire(
        self, remote, monkeypatch
    ):
        """An all-seeds-failed sweep re-raises as the same
        :class:`SweepFailureError` an in-process caller would see,
        structured failure records intact."""
        monkeypatch.setenv("REPRO_WORKER_FAULT", "raise:2")
        profile = ExecutionProfile(
            no_cache=True, max_attempts=1, on_error="collect"
        )
        handle = remote.submit(
            SweepSpec("fig7-mutuality", seeds=[2], smoke=True),
            profile=profile,
        )
        with pytest.raises(SweepFailureError) as excinfo:
            handle.result(timeout=60)
        assert excinfo.value.scenario == "fig7-mutuality"
        assert [
            record["seed"] for record in excinfo.value.failed_seeds
        ] == [2]
        assert handle.status() == "failed"

    def test_raise_fast_pool_failure_is_a_service_error(
        self, remote, monkeypatch
    ):
        """Under the pool default (raise-fast) the seed's own exception
        surfaces as a structured ServiceError, never a hang."""
        monkeypatch.setenv("REPRO_WORKER_FAULT", "raise:2")
        handle = remote.submit(
            SPEC, profile=ExecutionProfile(no_cache=True)
        )
        with pytest.raises(ServiceError) as excinfo:
            handle.result(timeout=60)
        assert "InjectedFaultError" in str(excinfo.value)
        assert "seed 2 is poison" in str(excinfo.value)

    def test_polling_a_cancelled_job_reports_terminal_state(self):
        """Satellite: a cancelled job polls as ``cancelled`` (terminal)
        and ``result()`` raises :class:`CancelledError`."""
        gate = threading.Event()

        class _Handle:
            def result(self):
                gate.wait(10.0)
                return execute_sweep(
                    SweepSpec("fig7-mutuality", seeds=[1], smoke=True),
                    ExecutionProfile(no_cache=True),
                )

            def cancel(self):
                return False

        class _Client:
            profile = ExecutionProfile()

            def submit(self, spec, profile=None):
                return _Handle()

        with JobServer(client=_Client()) as srv:
            remote = RemoteClient(srv.url, poll_interval=0.02)
            blocker = remote.submit(SPEC)
            victim = remote.submit(SPEC)
            assert victim.cancel() is True
            assert victim.status() == "cancelled"
            assert victim.done() is True
            assert victim.wait(timeout=1.0) is True
            with pytest.raises(CancelledError):
                victim.result(timeout=5)
            gate.set()
            assert blocker.wait(timeout=30)

    def test_dead_server_is_a_connection_error_not_a_hang(self):
        """Satellite: a server restart mid-poll surfaces immediately."""
        server = JobServer(profile=ExecutionProfile(no_cache=True))
        server.start()
        remote = RemoteClient(server.url, poll_interval=0.02)
        handle = remote.submit(SPEC)
        handle.result(timeout=60)
        server.close()
        with pytest.raises(ServiceConnectionError) as excinfo:
            handle.status()
        assert "cannot reach job service" in str(excinfo.value)
        with pytest.raises(ServiceConnectionError):
            remote.submit(SPEC)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RemoteClient("http://127.0.0.1:1", timeout=0)
        with pytest.raises(ValueError):
            RemoteClient("http://127.0.0.1:1", poll_interval=0)
        with pytest.raises(ValueError):
            RemoteClient("http://127.0.0.1:1", long_poll_wait=0)


def _gated_server():
    """A server whose jobs park until the returned gate opens."""
    gate = threading.Event()

    class _Handle:
        def result(self):
            gate.wait(30.0)
            return execute_sweep(
                SweepSpec("fig7-mutuality", seeds=[1], smoke=True),
                ExecutionProfile(no_cache=True),
            )

        def cancel(self):
            return False

    class _Client:
        profile = ExecutionProfile()

        def submit(self, spec, profile=None):
            return _Handle()

    return gate, JobServer(client=_Client())


class TestWaitSemantics:
    def test_wait_zero_is_exactly_one_status_request(self):
        """Satellite boundary: ``wait(timeout=0)`` issues exactly one
        status request in both polling modes, then returns False."""
        gate, server = _gated_server()
        with server:
            for long_poll in (True, False):
                remote = RemoteClient(
                    server.url, poll_interval=0.5, long_poll=long_poll
                )
                handle = remote.submit(SPEC)
                before = remote.requests_sent
                assert handle.wait(timeout=0) is False
                assert remote.requests_sent == before + 1, long_poll
            gate.set()

    def test_poll_wait_never_oversleeps_the_deadline(self):
        """Satellite fix: with a 500ms poll interval, ``wait(0.05)``
        must time out on schedule, not a full interval late."""
        gate, server = _gated_server()
        with server:
            remote = RemoteClient(
                server.url, poll_interval=0.5, long_poll=False
            )
            handle = remote.submit(SPEC)
            started = time.monotonic()
            assert handle.wait(timeout=0.05) is False
            assert time.monotonic() - started < 0.4
            gate.set()

    def test_long_poll_wait_costs_a_handful_of_requests(self):
        """A parked ``wait()`` rides the server-side long-poll: the
        job finishing 300ms in costs ~1 status request, not 300ms
        worth of polling."""
        gate, server = _gated_server()
        with server:
            remote = RemoteClient(server.url)
            handle = remote.submit(SPEC)
            opener = threading.Timer(0.3, gate.set)
            opener.start()
            try:
                assert handle.wait(timeout=30.0) is True
                assert handle.status_payload()["state"] == "done"
                # submit + parked long-poll + final status check.
                assert remote.requests_sent <= 4
            finally:
                opener.cancel()
