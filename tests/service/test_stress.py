"""Acceptance: hundreds of simultaneous HTTP submitters, one fleet.

The issue's bar: >=100 concurrent clients against one ``repro serve``
endpoint, every fetched result bit-identical to the in-process
``Client`` oracle, and ``DELETE`` on a queued job preventing it from
ever running (proven through the cache: the cancelled spec's seeds are
never computed)."""

import threading
import time
from pathlib import Path

import pytest

from repro.api import Client, ExecutionProfile, SweepSpec
from repro.analysis.export import sweep_to_payload
from repro.service import JobServer, RemoteClient
from repro.simulation.cache import SweepCache
from repro.simulation.sweep import execute_sweep

SUBMITTERS = 120
DISTINCT_SPECS = 6


def _values(payload):
    """A sweep export payload without the run-dependent blocks."""
    trimmed = dict(payload)
    trimmed.pop("timing")
    trimmed.pop("cache")
    trimmed.pop("seed_runtimes", None)
    return trimmed


class TestConcurrentClients:
    def test_hundred_plus_submitters_bit_identical_to_oracle(
        self, tmp_path
    ):
        specs = [
            SweepSpec("fig7-mutuality", seeds=[seed], smoke=True)
            for seed in range(1, DISTINCT_SPECS + 1)
        ]
        # The in-process oracle, straight through the Client facade.
        oracle_client = Client(ExecutionProfile(no_cache=True))
        oracles = {
            spec: _values(sweep_to_payload(oracle_client.run(spec)))
            for spec in specs
        }

        profile = ExecutionProfile(cache_dir=str(tmp_path / "cache"))
        results = [None] * SUBMITTERS
        errors = []

        with JobServer(profile=profile) as server:
            url = server.url

            def submitter(index: int) -> None:
                try:
                    remote = RemoteClient(
                        url, timeout=60, poll_interval=0.05
                    )
                    spec = specs[index % DISTINCT_SPECS]
                    sweep = remote.submit(spec).result(timeout=300)
                    results[index] = (spec, _values(
                        sweep_to_payload(sweep)
                    ))
                except BaseException as error:  # noqa: BLE001
                    errors.append((index, error))

            threads = [
                threading.Thread(target=submitter, args=(index,))
                for index in range(SUBMITTERS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            assert not any(
                thread.is_alive() for thread in threads
            ), "submitters hung"

        assert errors == []
        assert all(entry is not None for entry in results)
        for spec, payload in results:
            assert payload == oracles[spec], (
                f"HTTP result for {spec.scenario} seeds={spec.seeds} "
                f"diverged from the in-process oracle"
            )

    def test_delete_on_a_queued_job_prevents_it_from_ever_running(
        self, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        profile = ExecutionProfile(cache_dir=str(cache_dir))
        # Uncached multi-seed blocker: holds the single dispatcher for
        # seconds (the runs override makes each seed genuinely slow, so
        # a loaded machine cannot finish it before the cancel lands),
        # leaving the victim deterministically queued.
        blocker_spec = SweepSpec(
            "fig15-environment", seeds=[101, 102, 103, 104], smoke=True,
            overrides={"runs": 500},
        )
        victim_spec = SweepSpec("fig7-mutuality", seeds=[999], smoke=True)

        with JobServer(profile=profile) as server:
            remote = RemoteClient(server.url, poll_interval=0.05)
            blocker = remote.submit(blocker_spec)
            victim = remote.submit(victim_spec)
            assert victim.cancel() is True
            assert victim.status() == "cancelled"
            assert blocker.result(timeout=300).seeds == [
                101, 102, 103, 104,
            ]
            # Still cancelled after the queue drained: it never ran.
            assert victim.status() == "cancelled"
            from repro.api import CancelledError

            with pytest.raises(CancelledError):
                victim.result(timeout=5)

        # The proof it never computed: the cache holds the blocker's
        # seeds but nothing for the victim's.
        cache = SweepCache(Path(cache_dir))
        blocker_keys = SweepCache.keys_for(
            blocker_spec.scenario, blocker_spec.params_key(),
            blocker_spec.seeds,
        )
        victim_keys = SweepCache.keys_for(
            victim_spec.scenario, victim_spec.params_key(),
            victim_spec.seeds,
        )
        assert all(
            cache.get(key) is not None for key in blocker_keys.values()
        )
        assert all(
            cache.get(key) is None for key in victim_keys.values()
        )


class TestLongPollEfficiency:
    def test_long_poll_uses_strictly_fewer_requests_than_polling(self):
        """The PR's acceptance bar: the 120-submitter scenario, run
        once with long-poll waits and once with the client-side polling
        baseline, completes both ways — and long-poll spends strictly
        fewer HTTP requests doing it.

        A fake client with a fixed per-job delay keeps the comparison
        about wire traffic, not simulation compute.
        """
        outcome = execute_sweep(
            SweepSpec("fig7-mutuality", seeds=[1], smoke=True),
            ExecutionProfile(no_cache=True),
        )

        class _SlowHandle:
            def result(self):
                time.sleep(0.05)
                return outcome

            def cancel(self):
                return False

        class _SlowClient:
            profile = ExecutionProfile()

            def submit(self, spec, profile=None):
                return _SlowHandle()

        spec = SweepSpec("fig7-mutuality", seeds=[1], smoke=True)

        def run_mode(long_poll: bool) -> int:
            totals = []
            totals_lock = threading.Lock()
            errors = []
            with JobServer(
                client=_SlowClient(), parallel_jobs=4
            ) as server:
                def submitter(index: int) -> None:
                    try:
                        remote = RemoteClient(
                            server.url, timeout=60,
                            poll_interval=0.05, long_poll=long_poll,
                        )
                        handle = remote.submit(spec)
                        assert handle.wait(timeout=120) is True
                        with totals_lock:
                            totals.append(remote.requests_sent)
                    except BaseException as error:  # noqa: BLE001
                        errors.append((index, error))

                threads = [
                    threading.Thread(target=submitter, args=(index,))
                    for index in range(SUBMITTERS)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=120)
                assert not any(
                    thread.is_alive() for thread in threads
                ), "submitters hung"
            assert errors == []
            assert len(totals) == SUBMITTERS
            return sum(totals)

        long_poll_requests = run_mode(True)
        polling_requests = run_mode(False)
        assert long_poll_requests < polling_requests, (
            f"long-poll sent {long_poll_requests} requests, polling "
            f"baseline {polling_requests}"
        )
