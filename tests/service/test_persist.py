"""Durability tests: the ``--state-dir`` store, restart recovery, and
two servers sharing one state dir dispatching each job exactly once."""

import os
import socket
import threading

import pytest

from repro.api import Client, ExecutionProfile, SweepSpec
from repro.service import JobStateStore, JobTable
from repro.service.jobs import JobRecord
from repro.service.persist import default_server_id
from repro.simulation.sweep import execute_sweep

SPEC = SweepSpec("fig7-mutuality", seeds=[1], smoke=True)


def _seed_queued_job(store, job_id, spec=SPEC):
    """Journal a queued job the way a crashed server would have left it."""
    record = JobRecord(job_id, "sweep", [spec], None)
    store.save_job(record.to_persist_payload())
    return record


class _GateHandle:
    def __init__(self, client, spec):
        self.client = client
        self.spec = spec

    def result(self):
        with self.client.lock:
            self.client.started.append(self.spec)
        self.client.gate.wait(30.0)
        return self.client.outcome

    def cancel(self):
        return False


class _GateClient:
    """Deterministic client: ``result()`` parks on a shared gate."""

    def __init__(self, outcome, gate=None):
        self.profile = ExecutionProfile()
        self.outcome = outcome
        self.gate = gate if gate is not None else threading.Event()
        self.lock = threading.Lock()
        self.started = []

    def submit(self, spec, profile=None):
        return _GateHandle(self, spec)

    def submit_campaign(self, specs, profile=None):
        return _GateHandle(self, tuple(specs))


@pytest.fixture(scope="module")
def one_seed_sweep():
    return execute_sweep(SPEC, ExecutionProfile(no_cache=True))


class TestJobStateStore:
    def test_save_load_round_trip(self, tmp_path):
        store = JobStateStore(tmp_path / "state")
        payload = {"id": "job-000001", "state": "queued", "kind": "sweep"}
        store.save_job(payload)
        assert store.load_job("job-000001") == payload
        assert store.load_job("job-999999") is None

    def test_recover_jobs_sorted_and_garbage_tolerant(self, tmp_path):
        store = JobStateStore(tmp_path / "state")
        store.save_job({"id": "job-000002", "state": "queued"})
        store.save_job({"id": "job-000001", "state": "done"})
        # Corrupt JSON and an id-mismatched file must both be skipped.
        (tmp_path / "state" / "jobs" / "job-000003.json").write_text(
            "{not json"
        )
        store.save_job({"id": "job-000004", "state": "queued"})
        (tmp_path / "state" / "jobs" / "job-000004.json").rename(
            tmp_path / "state" / "jobs" / "job-000005.json"
        )
        recovered = store.recover_jobs()
        assert [entry["id"] for entry in recovered] == [
            "job-000001", "job-000002",
        ]

    def test_max_job_number_ignores_foreign_ids(self, tmp_path):
        store = JobStateStore(tmp_path / "state")
        assert store.max_job_number() == 0
        store.save_job({"id": "job-000007", "state": "queued"})
        store.save_job({"id": "task-000099", "state": "queued"})
        assert store.max_job_number() == 7

    def test_result_round_trip(self, tmp_path):
        store = JobStateStore(tmp_path / "state")
        store.save_result("job-000001", {"scenario": "fig7-mutuality"})
        assert store.load_result("job-000001") == {
            "scenario": "fig7-mutuality"
        }
        assert store.load_result("job-000002") is None

    def test_claim_is_exclusive_between_stores(self, tmp_path):
        first = JobStateStore(tmp_path / "state")
        second = JobStateStore(tmp_path / "state")
        assert first.claim("job-000001") is True
        # Same live process owns the lease: the second store loses.
        assert second.claim("job-000001") is False
        assert first.lease_owner("job-000001") == first.owner

    def test_claim_steals_a_dead_owners_lease(self, tmp_path):
        store = JobStateStore(tmp_path / "state")
        lease = tmp_path / "state" / "leases" / "job-000001.lease"
        # Same host, provably dead pid: dead evidence, stolen at once.
        lease.write_text(f"{socket.gethostname()}:999999999:gone")
        assert store.lease_live("job-000001") is False
        assert store.claim("job-000001") is True
        assert store.lease_owner("job-000001") == store.owner

    def test_cross_host_lease_lives_by_heartbeat_mtime(self, tmp_path):
        store = JobStateStore(tmp_path / "state", lease_ttl=5.0)
        lease = tmp_path / "state" / "leases" / "job-000001.lease"
        lease.write_text("elsewhere:1234:remote")
        # Fresh mtime: live, unclaimable.
        assert store.lease_live("job-000001") is True
        assert store.claim("job-000001") is False
        # Backdated past the steal threshold: dead, stealable.
        stale = lease.stat().st_mtime - 60.0
        os.utime(lease, (stale, stale))
        assert store.lease_live("job-000001") is False
        assert store.claim("job-000001") is True

    def test_touch_owned_leases_refreshes_only_our_mtimes(self, tmp_path):
        store = JobStateStore(tmp_path / "state")
        assert store.claim("job-000001") is True
        leases = tmp_path / "state" / "leases"
        ours = leases / "job-000001.lease"
        theirs = leases / "job-000002.lease"
        theirs.write_text("elsewhere:1234:remote")
        old = ours.stat().st_mtime - 60.0
        os.utime(ours, (old, old))
        os.utime(theirs, (old, old))
        store.touch_owned_leases()
        assert ours.stat().st_mtime > old + 30.0
        assert theirs.stat().st_mtime == pytest.approx(old)

    def test_missing_lease_is_not_live(self, tmp_path):
        store = JobStateStore(tmp_path / "state")
        assert store.lease_live("job-000001") is False

    def test_owner_identity_shape(self, tmp_path):
        owner = default_server_id()
        host, pid, token = owner.split(":")
        assert host == socket.gethostname()
        assert int(pid) == os.getpid()
        assert token
        store = JobStateStore(tmp_path / "state", owner="h:1:x")
        assert store.host == "h"

    def test_rejects_non_positive_ttl(self, tmp_path):
        with pytest.raises(ValueError):
            JobStateStore(tmp_path / "state", lease_ttl=0)


class TestRestartRecovery:
    def test_terminal_jobs_survive_and_ids_resume(self, tmp_path):
        state = tmp_path / "state"
        table = JobTable(
            Client(ExecutionProfile(no_cache=True)),
            store=JobStateStore(state),
        )
        record = table.submit_sweep(SPEC)
        assert record.wait(60.0)
        payload = record.result_payload()
        table.close(wait=True, timeout=5.0)

        revived = JobTable(
            Client(ExecutionProfile(no_cache=True)),
            store=JobStateStore(state),
        )
        try:
            jobs = revived.jobs()
            assert [job.job_id for job in jobs] == ["job-000001"]
            assert jobs[0].state() == "done"
            # done is journaled only after the result hits disk, so a
            # recovered terminal job always has its payload to serve.
            assert jobs[0].result_payload() == payload
            fresh = revived.submit_sweep(SPEC)
            assert fresh.job_id == "job-000002"
            assert fresh.wait(60.0)
        finally:
            revived.close(wait=True, timeout=5.0)

    def test_running_at_crash_becomes_server_restart_failure(
        self, tmp_path
    ):
        state = tmp_path / "state"
        store = JobStateStore(state)
        payload = JobRecord(
            "job-000001", "sweep", [SPEC], None
        ).to_persist_payload()
        payload["state"] = "running"
        store.save_job(payload)
        # The crashed server's lease: same host, dead pid.
        (state / "leases" / "job-000001.lease").write_text(
            f"{socket.gethostname()}:999999999:gone"
        )

        table = JobTable(
            Client(ExecutionProfile(no_cache=True)),
            store=JobStateStore(state),
        )
        try:
            record = table.get("job-000001")
            assert record is not None
            assert record.wait(5.0) is True
            assert record.state() == "failed"
            error = record.status_payload()["error"]
            assert error["reason"] == "server_restart"
            assert error["error_type"] == "ServerRestartError"
            assert record.result_payload() is None
            # The verdict is journaled, so a third restart agrees.
            assert store.load_job("job-000001")["state"] == "failed"
        finally:
            table.close(wait=True, timeout=5.0)

    def test_running_under_a_live_owner_is_watched_passively(
        self, tmp_path
    ):
        state = tmp_path / "state"
        store = JobStateStore(state)
        payload = JobRecord(
            "job-000001", "sweep", [SPEC], None
        ).to_persist_payload()
        payload["state"] = "running"
        store.save_job(payload)
        # A live owner: this very process.
        (state / "leases" / "job-000001.lease").write_text(
            f"{socket.gethostname()}:{os.getpid()}:peer"
        )

        table = JobTable(
            Client(ExecutionProfile(no_cache=True)),
            store=JobStateStore(state),
        )
        try:
            record = table.get("job-000001")
            assert record.state() == "running"
            assert record.wait(0.3) is False
            # Not ours to spare: the owning server's dispatcher runs it.
            assert record.cancel() is False
            # The owner finishes: result first, then the done journal.
            store.save_result("job-000001", {"scenario": "fig7-mutuality"})
            payload["state"] = "done"
            store.save_job(payload)
            assert record.wait(5.0) is True
            assert record.state() == "done"
            assert record.result_payload() == {
                "scenario": "fig7-mutuality"
            }
        finally:
            table.close(wait=True, timeout=5.0)

    def test_queued_at_crash_is_redispatched(
        self, tmp_path, one_seed_sweep
    ):
        state = tmp_path / "state"
        _seed_queued_job(JobStateStore(state), "job-000001")
        client = _GateClient(one_seed_sweep)
        client.gate.set()
        table = JobTable(client, store=JobStateStore(state))
        try:
            record = table.get("job-000001")
            assert record is not None
            assert record.wait(30.0) is True
            assert record.state() == "done"
            # The spec round-tripped through the journal intact.
            assert client.started == [SPEC]
        finally:
            table.close(wait=True, timeout=5.0)

    def test_unloadable_journal_entries_never_block_startup(
        self, tmp_path, one_seed_sweep
    ):
        state = tmp_path / "state"
        store = JobStateStore(state)
        _seed_queued_job(store, "job-000001")
        store.save_job({"id": "job-000002", "kind": "sweep",
                        "state": "queued",
                        "specs": [{"scenario": "fig99-nope"}]})
        client = _GateClient(one_seed_sweep)
        client.gate.set()
        table = JobTable(client, store=JobStateStore(state))
        try:
            assert [job.job_id for job in table.jobs()] == ["job-000001"]
            # Id allocation still clears the unloadable entry's number.
            fresh = table.submit_sweep(SPEC)
            assert fresh.job_id == "job-000003"
            assert fresh.wait(30.0)
        finally:
            table.close(wait=True, timeout=5.0)


class TestMultiServer:
    def test_two_tables_dispatch_each_job_exactly_once(
        self, tmp_path, one_seed_sweep
    ):
        state = tmp_path / "state"
        seed_store = JobStateStore(state)
        specs = [
            SweepSpec("fig7-mutuality", seeds=[seed], smoke=True)
            for seed in range(1, 7)
        ]
        for index, spec in enumerate(specs, start=1):
            _seed_queued_job(seed_store, f"job-{index:06d}", spec)

        gate = threading.Event()
        client_a = _GateClient(one_seed_sweep, gate)
        client_b = _GateClient(one_seed_sweep, gate)
        # Both tables recover the same six queued jobs and race for
        # dispatch leases while the gate keeps every handle parked.
        table_a = JobTable(
            client_a, parallel_jobs=2, store=JobStateStore(state)
        )
        table_b = JobTable(
            client_b, parallel_jobs=2, store=JobStateStore(state)
        )
        try:
            gate.set()
            for table in (table_a, table_b):
                for record in table.jobs():
                    assert record.wait(30.0), record.job_id
                    assert record.state() == "done"
            started = client_a.started + client_b.started
            # Exactly once each: six starts total, all seeds distinct.
            assert len(started) == len(specs)
            assert sorted(
                spec.seeds[0] for spec in started
            ) == [1, 2, 3, 4, 5, 6]
        finally:
            gate.set()
            table_a.close(wait=True, timeout=5.0)
            table_b.close(wait=True, timeout=5.0)

    def test_a_journaled_cancel_is_recovered_as_terminal(self, tmp_path):
        """A cancel journaled by another server survives recovery —
        the job is never re-dispatched as phantom queued work."""
        state = tmp_path / "state"
        store = JobStateStore(state)
        record = _seed_queued_job(store, "job-000001")
        cancelled = record.to_persist_payload()
        cancelled["state"] = "cancelled"
        cancelled["error"] = {
            "error_type": "CancelledError",
            "message": "job cancelled before it ran",
        }
        store.save_job(cancelled)

        table = JobTable(
            Client(ExecutionProfile(no_cache=True)),
            store=JobStateStore(state),
        )
        try:
            revived = table.get("job-000001")
            assert revived.wait(5.0) is True
            assert revived.state() == "cancelled"
        finally:
            table.close(wait=True, timeout=5.0)
