"""Durability tests: the ``--state-dir`` store, restart recovery, and
two servers sharing one state dir dispatching each job exactly once."""

import os
import socket
import threading
import time

import pytest

from repro.api import Client, ExecutionProfile, SweepSpec
from repro.service import JobStateStore, JobTable
from repro.service.jobs import JobRecord
from repro.service.persist import default_server_id
from repro.simulation.sweep import execute_sweep

SPEC = SweepSpec("fig7-mutuality", seeds=[1], smoke=True)


def _seed_queued_job(store, job_id, spec=SPEC):
    """Journal a queued job the way a crashed server would have left it."""
    record = JobRecord(job_id, "sweep", [spec], None)
    store.save_job(record.to_persist_payload())
    return record


class _GateHandle:
    def __init__(self, client, spec):
        self.client = client
        self.spec = spec

    def result(self):
        with self.client.lock:
            self.client.started.append(self.spec)
        self.client.gate.wait(30.0)
        return self.client.outcome

    def cancel(self):
        return False


class _GateClient:
    """Deterministic client: ``result()`` parks on a shared gate."""

    def __init__(self, outcome, gate=None):
        self.profile = ExecutionProfile()
        self.outcome = outcome
        self.gate = gate if gate is not None else threading.Event()
        self.lock = threading.Lock()
        self.started = []

    def submit(self, spec, profile=None):
        return _GateHandle(self, spec)

    def submit_campaign(self, specs, profile=None):
        return _GateHandle(self, tuple(specs))


@pytest.fixture(scope="module")
def one_seed_sweep():
    return execute_sweep(SPEC, ExecutionProfile(no_cache=True))


class TestJobStateStore:
    def test_save_load_round_trip(self, tmp_path):
        store = JobStateStore(tmp_path / "state")
        payload = {"id": "job-000001", "state": "queued", "kind": "sweep"}
        store.save_job(payload)
        assert store.load_job("job-000001") == payload
        assert store.load_job("job-999999") is None

    def test_recover_jobs_sorted_and_garbage_tolerant(self, tmp_path):
        store = JobStateStore(tmp_path / "state")
        store.save_job({"id": "job-000002", "state": "queued"})
        store.save_job({"id": "job-000001", "state": "done"})
        # Corrupt JSON and an id-mismatched file must both be skipped.
        (tmp_path / "state" / "jobs" / "job-000003.json").write_text(
            "{not json"
        )
        store.save_job({"id": "job-000004", "state": "queued"})
        (tmp_path / "state" / "jobs" / "job-000004.json").rename(
            tmp_path / "state" / "jobs" / "job-000005.json"
        )
        recovered = store.recover_jobs()
        assert [entry["id"] for entry in recovered] == [
            "job-000001", "job-000002",
        ]

    def test_max_job_number_ignores_foreign_ids(self, tmp_path):
        store = JobStateStore(tmp_path / "state")
        assert store.max_job_number() == 0
        store.save_job({"id": "job-000007", "state": "queued"})
        store.save_job({"id": "task-000099", "state": "queued"})
        assert store.max_job_number() == 7

    def test_result_round_trip(self, tmp_path):
        store = JobStateStore(tmp_path / "state")
        store.save_result("job-000001", {"scenario": "fig7-mutuality"})
        assert store.load_result("job-000001") == {
            "scenario": "fig7-mutuality"
        }
        assert store.load_result("job-000002") is None

    def test_claim_is_exclusive_between_stores(self, tmp_path):
        first = JobStateStore(tmp_path / "state")
        second = JobStateStore(tmp_path / "state")
        assert first.claim("job-000001") is True
        # Same live process owns the lease: the second store loses.
        assert second.claim("job-000001") is False
        assert first.lease_owner("job-000001") == first.owner

    def test_claim_steals_a_dead_owners_lease(self, tmp_path):
        store = JobStateStore(tmp_path / "state")
        lease = tmp_path / "state" / "leases" / "job-000001.lease"
        # Same host, provably dead pid: dead evidence, stolen at once.
        lease.write_text(f"{socket.gethostname()}:999999999:gone")
        assert store.lease_live("job-000001") is False
        assert store.claim("job-000001") is True
        assert store.lease_owner("job-000001") == store.owner

    def test_cross_host_lease_lives_by_heartbeat_mtime(self, tmp_path):
        store = JobStateStore(tmp_path / "state", lease_ttl=5.0)
        lease = tmp_path / "state" / "leases" / "job-000001.lease"
        lease.write_text("elsewhere:1234:remote")
        # Fresh mtime: live, unclaimable.
        assert store.lease_live("job-000001") is True
        assert store.claim("job-000001") is False
        # Backdated past the steal threshold: dead, stealable.
        stale = lease.stat().st_mtime - 60.0
        os.utime(lease, (stale, stale))
        assert store.lease_live("job-000001") is False
        assert store.claim("job-000001") is True

    def test_touch_owned_leases_refreshes_only_our_mtimes(self, tmp_path):
        store = JobStateStore(tmp_path / "state")
        assert store.claim("job-000001") is True
        leases = tmp_path / "state" / "leases"
        ours = leases / "job-000001.lease"
        theirs = leases / "job-000002.lease"
        theirs.write_text("elsewhere:1234:remote")
        old = ours.stat().st_mtime - 60.0
        os.utime(ours, (old, old))
        os.utime(theirs, (old, old))
        store.touch_owned_leases()
        assert ours.stat().st_mtime > old + 30.0
        assert theirs.stat().st_mtime == pytest.approx(old)

    def test_missing_lease_is_not_live(self, tmp_path):
        store = JobStateStore(tmp_path / "state")
        assert store.lease_live("job-000001") is False

    def test_owner_identity_shape(self, tmp_path):
        owner = default_server_id()
        host, pid, token = owner.split(":")
        assert host == socket.gethostname()
        assert int(pid) == os.getpid()
        assert token
        store = JobStateStore(tmp_path / "state", owner="h:1:x")
        assert store.host == "h"

    def test_rejects_non_positive_ttl(self, tmp_path):
        with pytest.raises(ValueError):
            JobStateStore(tmp_path / "state", lease_ttl=0)

    def test_reserve_job_id_is_exclusive_between_stores(self, tmp_path):
        first = JobStateStore(tmp_path / "state")
        second = JobStateStore(tmp_path / "state")
        assert first.reserve_job_id(1) == "job-000001"
        assert second.reserve_job_id(1) is None
        assert second.reserve_job_id(2) == "job-000002"
        # The placeholder counts for allocation but is not a job yet.
        assert first.max_job_number() == 2
        assert first.recover_jobs() == []


class TestLeaseHygiene:
    def test_steal_restores_a_displaced_live_lease(
        self, tmp_path, monkeypatch
    ):
        """The TOCTOU window: stealer B judges the lease dead, then a
        racing stealer A completes its steal (fresh live lease) before
        B's rename lands.  B must put A's lease back, not claim."""
        state = tmp_path / "state"
        a = JobStateStore(state)
        b = JobStateStore(state)
        assert a.claim("job-000001") is True
        # Freeze B's pre-rename verdict at "dead" to reproduce the
        # stale read; the post-rename tombstone check must still see
        # A's live lease and abort.
        monkeypatch.setattr(b, "lease_live", lambda job_id: False)
        assert b.claim("job-000001") is False
        assert a.lease_owner("job-000001") == a.owner
        assert list((state / "leases").glob("*.stale-*")) == []
        # The restored lease is the same inode: A's heartbeat works.
        old = (state / "leases" / "job-000001.lease").stat().st_mtime - 60
        os.utime(state / "leases" / "job-000001.lease", (old, old))
        a.touch_owned_leases()
        mtime = (state / "leases" / "job-000001.lease").stat().st_mtime
        assert mtime > old + 30.0

    def test_successful_steal_leaves_no_tombstone(self, tmp_path):
        store = JobStateStore(tmp_path / "state")
        lease = tmp_path / "state" / "leases" / "job-000001.lease"
        lease.write_text(f"{socket.gethostname()}:999999999:gone")
        assert store.claim("job-000001") is True
        assert list(
            (tmp_path / "state" / "leases").glob("*.stale-*")
        ) == []

    def test_release_unlinks_only_the_owned_lease(self, tmp_path):
        state = tmp_path / "state"
        a = JobStateStore(state)
        b = JobStateStore(state)
        assert a.claim("job-000001") is True
        lease = state / "leases" / "job-000001.lease"
        b.release("job-000001")  # not B's to drop
        assert lease.exists()
        a.release("job-000001")
        assert not lease.exists()
        a.release("job-000001")  # idempotent on a missing lease

    def test_discard_lease_drops_any_owner(self, tmp_path):
        state = tmp_path / "state"
        store = JobStateStore(state)
        lease = state / "leases" / "job-000001.lease"
        lease.write_text("elsewhere:1234:remote")
        store.discard_lease("job-000001")
        assert not lease.exists()

    def test_sweep_drops_terminal_leases_and_old_tombstones(
        self, tmp_path
    ):
        state = tmp_path / "state"
        store = JobStateStore(state)
        leases = state / "leases"
        (leases / "job-000001.lease").write_text("elsewhere:1:x")
        (leases / "job-000002.lease").write_text("elsewhere:2:y")
        old_stone = leases / "job-000003.lease.stale-dead"
        old_stone.write_text("elsewhere:3:z")
        stale = old_stone.stat().st_mtime - 120.0
        os.utime(old_stone, (stale, stale))
        fresh_stone = leases / "job-000004.lease.stale-racing"
        fresh_stone.write_text("elsewhere:4:w")

        store.sweep_stale_leases(["job-000001"])
        assert not (leases / "job-000001.lease").exists()
        assert (leases / "job-000002.lease").exists()  # not terminal
        assert not old_stone.exists()
        assert fresh_stone.exists()  # a steal could still be examining it


class TestRestartRecovery:
    def test_terminal_jobs_survive_and_ids_resume(self, tmp_path):
        state = tmp_path / "state"
        table = JobTable(
            Client(ExecutionProfile(no_cache=True)),
            store=JobStateStore(state),
        )
        record = table.submit_sweep(SPEC)
        assert record.wait(60.0)
        payload = record.result_payload()
        table.close(wait=True, timeout=5.0)

        revived = JobTable(
            Client(ExecutionProfile(no_cache=True)),
            store=JobStateStore(state),
        )
        try:
            jobs = revived.jobs()
            assert [job.job_id for job in jobs] == ["job-000001"]
            assert jobs[0].state() == "done"
            # done is journaled only after the result hits disk, so a
            # recovered terminal job always has its payload to serve.
            assert jobs[0].result_payload() == payload
            fresh = revived.submit_sweep(SPEC)
            assert fresh.job_id == "job-000002"
            assert fresh.wait(60.0)
        finally:
            revived.close(wait=True, timeout=5.0)

    def test_running_at_crash_becomes_server_restart_failure(
        self, tmp_path
    ):
        state = tmp_path / "state"
        store = JobStateStore(state)
        payload = JobRecord(
            "job-000001", "sweep", [SPEC], None
        ).to_persist_payload()
        payload["state"] = "running"
        store.save_job(payload)
        # The crashed server's lease: same host, dead pid.
        (state / "leases" / "job-000001.lease").write_text(
            f"{socket.gethostname()}:999999999:gone"
        )

        table = JobTable(
            Client(ExecutionProfile(no_cache=True)),
            store=JobStateStore(state),
        )
        try:
            record = table.get("job-000001")
            assert record is not None
            assert record.wait(5.0) is True
            assert record.state() == "failed"
            error = record.status_payload()["error"]
            assert error["reason"] == "server_restart"
            assert error["error_type"] == "ServerRestartError"
            assert record.result_payload() is None
            # The verdict is journaled, so a third restart agrees.
            assert store.load_job("job-000001")["state"] == "failed"
        finally:
            table.close(wait=True, timeout=5.0)

    def test_running_under_a_live_owner_is_watched_passively(
        self, tmp_path
    ):
        state = tmp_path / "state"
        store = JobStateStore(state)
        payload = JobRecord(
            "job-000001", "sweep", [SPEC], None
        ).to_persist_payload()
        payload["state"] = "running"
        store.save_job(payload)
        # A live owner: this very process.
        (state / "leases" / "job-000001.lease").write_text(
            f"{socket.gethostname()}:{os.getpid()}:peer"
        )

        table = JobTable(
            Client(ExecutionProfile(no_cache=True)),
            store=JobStateStore(state),
        )
        try:
            record = table.get("job-000001")
            assert record.state() == "running"
            assert record.wait(0.3) is False
            # Not ours to spare: the owning server's dispatcher runs it.
            assert record.cancel() is False
            # The owner finishes: result first, then the done journal.
            store.save_result("job-000001", {"scenario": "fig7-mutuality"})
            payload["state"] = "done"
            store.save_job(payload)
            assert record.wait(5.0) is True
            assert record.state() == "done"
            assert record.result_payload() == {
                "scenario": "fig7-mutuality"
            }
        finally:
            table.close(wait=True, timeout=5.0)

    def test_passive_record_fails_over_when_the_owner_dies(
        self, tmp_path
    ):
        """A lease winner crashing after journaling ``running`` must not
        leave the surviving server's waiters hanging forever."""
        state = tmp_path / "state"
        store = JobStateStore(state)
        payload = JobRecord(
            "job-000001", "sweep", [SPEC], None
        ).to_persist_payload()
        payload["state"] = "running"
        store.save_job(payload)
        lease = state / "leases" / "job-000001.lease"
        # A live owner at recovery time: watched passively.
        lease.write_text(f"{socket.gethostname()}:{os.getpid()}:peer")

        table = JobTable(
            Client(ExecutionProfile(no_cache=True)),
            store=JobStateStore(state),
        )
        try:
            record = table.get("job-000001")
            assert record.state() == "running"
            # The owner dies mid-run: same host, provably dead pid.
            lease.write_text(f"{socket.gethostname()}:999999999:gone")
            assert record.wait(5.0) is True
            assert record.state() == "failed"
            error = record.status_payload()["error"]
            assert error["reason"] == "server_restart"
            # The verdict is journaled and the dead lease reaped.
            assert store.load_job("job-000001")["state"] == "failed"
            assert not lease.exists()
        finally:
            table.close(wait=True, timeout=5.0)

    def test_terminal_jobs_release_their_dispatch_leases(
        self, tmp_path, one_seed_sweep
    ):
        state = tmp_path / "state"
        client = _GateClient(one_seed_sweep)
        client.gate.set()
        table = JobTable(client, store=JobStateStore(state))
        try:
            record = table.submit_sweep(SPEC)
            assert record.wait(30.0) is True
            deadline = time.monotonic() + 5.0
            leases = state / "leases"
            # The lease drops right after execution returns.
            while list(leases.iterdir()) and time.monotonic() < deadline:
                time.sleep(0.01)
            assert list(leases.iterdir()) == []
        finally:
            table.close(wait=True, timeout=5.0)

    def test_recovery_sweeps_a_crashed_servers_leases(self, tmp_path):
        state = tmp_path / "state"
        store = JobStateStore(state)
        done = JobRecord(
            "job-000001", "sweep", [SPEC], None
        ).to_persist_payload()
        done["state"] = "done"
        store.save_job(done)
        store.save_result("job-000001", {"scenario": "fig7-mutuality"})
        leases = state / "leases"
        (leases / "job-000001.lease").write_text("elsewhere:1:x")
        stone = leases / "job-000001.lease.stale-crashed"
        stone.write_text("elsewhere:2:y")
        old = stone.stat().st_mtime - 120.0
        os.utime(stone, (old, old))

        table = JobTable(
            Client(ExecutionProfile(no_cache=True)),
            store=JobStateStore(state),
        )
        try:
            assert not (leases / "job-000001.lease").exists()
            assert not stone.exists()
        finally:
            table.close(wait=True, timeout=5.0)

    def test_queued_at_crash_is_redispatched(
        self, tmp_path, one_seed_sweep
    ):
        state = tmp_path / "state"
        _seed_queued_job(JobStateStore(state), "job-000001")
        client = _GateClient(one_seed_sweep)
        client.gate.set()
        table = JobTable(client, store=JobStateStore(state))
        try:
            record = table.get("job-000001")
            assert record is not None
            assert record.wait(30.0) is True
            assert record.state() == "done"
            # The spec round-tripped through the journal intact.
            assert client.started == [SPEC]
        finally:
            table.close(wait=True, timeout=5.0)

    def test_unloadable_journal_entries_never_block_startup(
        self, tmp_path, one_seed_sweep
    ):
        state = tmp_path / "state"
        store = JobStateStore(state)
        _seed_queued_job(store, "job-000001")
        store.save_job({"id": "job-000002", "kind": "sweep",
                        "state": "queued",
                        "specs": [{"scenario": "fig99-nope"}]})
        client = _GateClient(one_seed_sweep)
        client.gate.set()
        table = JobTable(client, store=JobStateStore(state))
        try:
            assert [job.job_id for job in table.jobs()] == ["job-000001"]
            # Id allocation still clears the unloadable entry's number.
            fresh = table.submit_sweep(SPEC)
            assert fresh.job_id == "job-000003"
            assert fresh.wait(30.0)
        finally:
            table.close(wait=True, timeout=5.0)


class TestMultiServer:
    def test_two_tables_dispatch_each_job_exactly_once(
        self, tmp_path, one_seed_sweep
    ):
        state = tmp_path / "state"
        seed_store = JobStateStore(state)
        specs = [
            SweepSpec("fig7-mutuality", seeds=[seed], smoke=True)
            for seed in range(1, 7)
        ]
        for index, spec in enumerate(specs, start=1):
            _seed_queued_job(seed_store, f"job-{index:06d}", spec)

        gate = threading.Event()
        client_a = _GateClient(one_seed_sweep, gate)
        client_b = _GateClient(one_seed_sweep, gate)
        # Both tables recover the same six queued jobs and race for
        # dispatch leases while the gate keeps every handle parked.
        table_a = JobTable(
            client_a, parallel_jobs=2, store=JobStateStore(state)
        )
        table_b = JobTable(
            client_b, parallel_jobs=2, store=JobStateStore(state)
        )
        try:
            gate.set()
            for table in (table_a, table_b):
                for record in table.jobs():
                    assert record.wait(30.0), record.job_id
                    assert record.state() == "done"
            started = client_a.started + client_b.started
            # Exactly once each: six starts total, all seeds distinct.
            assert len(started) == len(specs)
            assert sorted(
                spec.seeds[0] for spec in started
            ) == [1, 2, 3, 4, 5, 6]
        finally:
            gate.set()
            table_a.close(wait=True, timeout=5.0)
            table_b.close(wait=True, timeout=5.0)

    def test_two_live_tables_never_mint_the_same_id(
        self, tmp_path, one_seed_sweep
    ):
        """Both tables seed their counters at 1 on an empty state dir;
        the O_EXCL reservation must still keep fresh ids disjoint."""
        state = tmp_path / "state"
        client_a = _GateClient(one_seed_sweep)
        client_b = _GateClient(one_seed_sweep)
        client_a.gate.set()
        client_b.gate.set()
        table_a = JobTable(client_a, store=JobStateStore(state))
        table_b = JobTable(client_b, store=JobStateStore(state))
        try:
            first = table_a.submit_sweep(SPEC)
            second = table_b.submit_sweep(SPEC)
            assert {first.job_id, second.job_id} == {
                "job-000001", "job-000002",
            }
            assert first.wait(30.0) and second.wait(30.0)
            # Each journal belongs to exactly its own job.
            store = JobStateStore(state)
            for record in (first, second):
                assert store.load_job(record.job_id)["id"] == record.job_id
        finally:
            table_a.close(wait=True, timeout=5.0)
            table_b.close(wait=True, timeout=5.0)

    def test_a_finished_jobs_vacated_lease_is_not_rerun(
        self, tmp_path, one_seed_sweep
    ):
        """Terminal jobs release their leases, so a claim on a finished
        job *succeeds* — the dispatcher must adopt the terminal journal
        instead of running the job a second time."""
        state = tmp_path / "state"
        store = JobStateStore(state)
        client = _GateClient(one_seed_sweep)
        client.gate.set()
        table = JobTable(client, store=store)
        try:
            # A queued record this table believes is still its work...
            record = JobRecord("job-000001", "sweep", [SPEC], None)
            record.store = store
            # ...that a peer already ran to completion and released.
            done = record.to_persist_payload()
            done["state"] = "done"
            store.save_result("job-000001", {"scenario": "fig7-mutuality"})
            store.save_job(done)

            assert table._claim(record) is False
            assert record.state() == "done"
            assert client.started == []
            assert list((state / "leases").iterdir()) == []
        finally:
            table.close(wait=True, timeout=5.0)

    def test_a_journaled_cancel_is_recovered_as_terminal(self, tmp_path):
        """A cancel journaled by another server survives recovery —
        the job is never re-dispatched as phantom queued work."""
        state = tmp_path / "state"
        store = JobStateStore(state)
        record = _seed_queued_job(store, "job-000001")
        cancelled = record.to_persist_payload()
        cancelled["state"] = "cancelled"
        cancelled["error"] = {
            "error_type": "CancelledError",
            "message": "job cancelled before it ran",
        }
        store.save_job(cancelled)

        table = JobTable(
            Client(ExecutionProfile(no_cache=True)),
            store=JobStateStore(state),
        )
        try:
            revived = table.get("job-000001")
            assert revived.wait(5.0) is True
            assert revived.state() == "cancelled"
        finally:
            table.close(wait=True, timeout=5.0)


class TestWaitWakeups:
    def test_local_bounded_wait_parks_once(self, tmp_path):
        """A store-backed but locally-owned record must not wake ~10x a
        second while a long-poll handler is parked on it."""
        record = JobRecord("job-000001", "sweep", [SPEC], None)
        record.store = JobStateStore(tmp_path / "state")
        sleeps = []
        inner = record._changed.wait

        def counted(timeout=None):
            sleeps.append(timeout)
            return inner(timeout)

        record._changed.wait = counted
        assert record.wait(0.4) is False
        assert len(sleeps) == 1

    def test_waiter_wakes_on_a_mid_wait_passive_flip(self, tmp_path):
        """Losing the dispatch race while a waiter is parked must move
        that waiter onto the journal, not strand it until timeout."""
        state = tmp_path / "state"
        store = JobStateStore(state)
        record = JobRecord("job-000001", "sweep", [SPEC], None)
        record.store = store
        store.save_job(record.to_persist_payload())
        # The winning peer's live lease (this very process).
        (state / "leases" / "job-000001.lease").write_text(
            f"{socket.gethostname()}:{os.getpid()}:peer"
        )
        outcomes = []
        waiter = threading.Thread(
            target=lambda: outcomes.append(record.wait(30.0))
        )
        waiter.start()
        time.sleep(0.2)
        record._mark_passive()
        payload = record.to_persist_payload()
        payload["state"] = "done"
        store.save_result("job-000001", {"scenario": "fig7-mutuality"})
        store.save_job(payload)
        waiter.join(5.0)
        assert not waiter.is_alive()
        assert outcomes == [True]
        assert record.state() == "done"
