"""HTTP-level tests for the ``repro serve`` JSON API."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import Client, ExecutionProfile, SweepSpec
from repro.service import JobServer
from repro.simulation import registry
from repro.simulation.distributed import WorkQueue
from repro.simulation.sweep import execute_sweep

SPEC = SweepSpec("fig7-mutuality", seeds=[1], smoke=True)


def _raw(server, method, path, payload=None, body=None):
    """One raw request; returns (status, parsed body) without raising."""
    data = body
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        f"{server.url}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _wait_done(server, job_id, timeout=60.0):
    record = server.table.get(job_id)
    assert record is not None and record.wait(timeout)
    return record


@pytest.fixture(scope="module")
def server():
    with JobServer(profile=ExecutionProfile(no_cache=True)) as srv:
        yield srv


class TestSubmitSweep:
    def test_bare_spec_payload(self, server):
        status, body = _raw(
            server, "POST", "/v1/sweeps", SPEC.to_payload()
        )
        assert status == 201
        assert body["kind"] == "sweep"
        assert body["state"] in ("queued", "running")
        assert body["spec"] == SPEC.to_payload()
        record = _wait_done(server, body["id"])
        assert record.state() == "done"

    def test_spec_with_profile_envelope(self, server):
        status, body = _raw(server, "POST", "/v1/sweeps", {
            "spec": SPEC.to_payload(),
            "profile": {"workers": 1, "no_cache": True},
        })
        assert status == 201
        _wait_done(server, body["id"])

    def test_result_matches_inprocess_engine(self, server):
        status, body = _raw(
            server, "POST", "/v1/sweeps", SPEC.to_payload()
        )
        record = _wait_done(server, body["id"])
        status, result = _raw(
            server, "GET", f"/v1/jobs/{body['id']}/result"
        )
        assert status == 200
        oracle = execute_sweep(SPEC, ExecutionProfile(no_cache=True))
        from repro.analysis.export import sweep_to_payload

        expected = sweep_to_payload(oracle)
        for volatile in ("timing",):
            expected.pop(volatile)
            result.pop(volatile)
        assert result == expected


class TestValidation:
    def test_unknown_scenario_is_400_with_registry_message(self, server):
        status, body = _raw(server, "POST", "/v1/sweeps", {
            "scenario": "fig99-nope", "seeds": [1],
        })
        assert status == 400
        message = body["error"]["message"]
        assert "unknown scenario 'fig99-nope'" in message
        assert "fig7-mutuality" in message  # names the known set

    def test_unknown_override_is_400(self, server):
        status, body = _raw(server, "POST", "/v1/sweeps", {
            "scenario": "fig7-mutuality", "seeds": [1],
            "overrides": {"bogus_param": 1},
        })
        assert status == 400
        assert "bogus" in body["error"]["message"]

    def test_bad_profile_is_400(self, server):
        status, body = _raw(server, "POST", "/v1/sweeps", {
            "spec": SPEC.to_payload(), "profile": {"workers": 0},
        })
        assert status == 400
        assert "workers" in body["error"]["message"]

    def test_conflicting_profile_is_400(self, server):
        status, body = _raw(server, "POST", "/v1/sweeps", {
            "spec": SPEC.to_payload(),
            "profile": {"no_cache": True, "cache_dir": "/tmp/x"},
        })
        assert status == 400
        assert "no_cache" in body["error"]["message"]

    def test_invalid_json_body_is_400(self, server):
        status, body = _raw(
            server, "POST", "/v1/sweeps", body=b"{not json"
        )
        assert status == 400
        assert "not valid JSON" in body["error"]["message"]

    def test_empty_body_is_400(self, server):
        status, body = _raw(server, "POST", "/v1/sweeps", body=b"")
        assert status == 400

    def test_non_object_body_is_400(self, server):
        status, body = _raw(server, "POST", "/v1/sweeps", payload=[1, 2])
        assert status == 400

    def test_unknown_envelope_field_is_400(self, server):
        status, body = _raw(server, "POST", "/v1/sweeps", {
            "spec": SPEC.to_payload(), "sched": "asap",
        })
        assert status == 400
        assert "sched" in body["error"]["message"]

    def test_bad_manifest_is_400(self, server):
        status, body = _raw(server, "POST", "/v1/campaigns", {
            "sweeps": [],
        })
        assert status == 400
        assert "sweeps" in body["error"]["message"]


class TestJobEndpoints:
    def test_unknown_job_is_404(self, server):
        for path in ("/v1/jobs/job-424242",
                     "/v1/jobs/job-424242/result"):
            status, body = _raw(server, "GET", path)
            assert status == 404
            assert "job-424242" in body["error"]["message"]
        status, _ = _raw(server, "DELETE", "/v1/jobs/job-424242")
        assert status == 404

    def test_unknown_path_is_404(self, server):
        status, body = _raw(server, "GET", "/v2/jobs")
        assert status == 404
        status, body = _raw(server, "GET", "/v1/sweeps")
        assert status == 404

    def test_jobs_listing(self, server):
        _, body = _raw(server, "POST", "/v1/sweeps", SPEC.to_payload())
        _wait_done(server, body["id"])
        status, listing = _raw(server, "GET", "/v1/jobs")
        assert status == 200
        ids = [job["id"] for job in listing["jobs"]]
        assert body["id"] in ids
        assert ids == sorted(ids)

    def test_health_counts_jobs(self, server):
        status, body = _raw(server, "GET", "/v1/health")
        assert status == 200
        assert body["status"] == "ok"
        assert isinstance(body["jobs"], dict)

    def test_campaign_submit_and_result(self, server):
        manifest = {
            "name": "pair",
            "sweeps": [
                SPEC.to_payload(),
                {"scenario": "fig7-mutuality", "seed_count": 1,
                 "first_seed": 2, "smoke": True},
            ],
        }
        status, body = _raw(server, "POST", "/v1/campaigns", manifest)
        assert status == 201
        assert body["kind"] == "campaign"
        assert body["labels"] == ["fig7-mutuality", "fig7-mutuality#2"]
        assert body["name"] == "pair"
        _wait_done(server, body["id"])
        status, result = _raw(
            server, "GET", f"/v1/jobs/{body['id']}/result"
        )
        assert status == 200
        assert sorted(result) == ["fig7-mutuality", "fig7-mutuality#2"]
        assert result["fig7-mutuality#2"]["seeds"] == [2]


class TestResultStates:
    def test_result_before_done_is_409(self):
        """A queued job's result is a 409 naming the state."""
        gate = threading.Event()

        class _Handle:
            def result(self):
                gate.wait(10.0)
                raise RuntimeError("never resolves in this test")

            def cancel(self):
                return False

        class _Client:
            profile = ExecutionProfile()

            def submit(self, spec, profile=None):
                return _Handle()

        with JobServer(client=_Client()) as srv:
            _, blocker = _raw(
                srv, "POST", "/v1/sweeps", SPEC.to_payload()
            )
            _, queued = _raw(
                srv, "POST", "/v1/sweeps", SPEC.to_payload()
            )
            status, body = _raw(
                srv, "GET", f"/v1/jobs/{queued['id']}/result"
            )
            assert status == 409
            assert body["error"]["state"] == "queued"
            assert "still queued" in body["error"]["message"]
            gate.set()

    def test_cancelled_result_is_409_and_delete_is_honest(self):
        gate = threading.Event()
        started = []

        class _Handle:
            def result(self):
                started.append(True)
                gate.wait(10.0)
                return execute_sweep(
                    SPEC, ExecutionProfile(no_cache=True)
                )

            def cancel(self):
                return False

        class _Client:
            profile = ExecutionProfile()

            def submit(self, spec, profile=None):
                return _Handle()

        with JobServer(client=_Client()) as srv:
            _, blocker = _raw(
                srv, "POST", "/v1/sweeps", SPEC.to_payload()
            )
            _, victim = _raw(
                srv, "POST", "/v1/sweeps", SPEC.to_payload()
            )
            status, body = _raw(
                srv, "DELETE", f"/v1/jobs/{victim['id']}"
            )
            assert status == 200
            assert body == {
                "cancelled": True, "id": victim["id"],
                "state": "cancelled",
            }
            status, body = _raw(
                srv, "GET", f"/v1/jobs/{victim['id']}/result"
            )
            assert status == 409
            assert body["error"]["state"] == "cancelled"
            gate.set()
            _wait_done(srv, blocker["id"])
            # The victim never executed.
            assert len(started) == 1
            # Cancelling a finished job spares nothing.
            status, body = _raw(
                srv, "DELETE", f"/v1/jobs/{blocker['id']}"
            )
            assert status == 200
            assert body["cancelled"] is False

    def test_runtime_failure_is_500_with_error_body(self):
        with JobServer(profile=ExecutionProfile(no_cache=True)) as srv:
            spec = SweepSpec(
                "fig7-mutuality", seeds=[1], smoke=True,
                overrides={"threshold": "not-a-number"},
            )
            _, body = _raw(
                srv, "POST", "/v1/sweeps", spec.to_payload()
            )
            record = _wait_done(srv, body["id"])
            assert record.state() == "failed"
            status, job = _raw(srv, "GET", f"/v1/jobs/{body['id']}")
            assert status == 200
            assert job["state"] == "failed"
            assert job["error"]["message"]
            status, result = _raw(
                srv, "GET", f"/v1/jobs/{body['id']}/result"
            )
            assert status == 500
            assert result["error"]["state"] == "failed"

    def test_quarantined_seeds_ride_in_the_status_body(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_WORKER_FAULT", "raise:2")
        profile = ExecutionProfile(
            no_cache=True, max_attempts=1, on_error="collect"
        )
        with JobServer(profile=profile) as srv:
            spec = SweepSpec("fig7-mutuality", seeds=[1, 2], smoke=True)
            _, body = _raw(
                srv, "POST", "/v1/sweeps", spec.to_payload()
            )
            record = _wait_done(srv, body["id"])
            assert record.state() == "done"
            _, job = _raw(srv, "GET", f"/v1/jobs/{body['id']}")
            assert [f["seed"] for f in job["failed_seeds"]] == [2]
            assert job["failed_seeds"][0]["error_type"] == (
                "InjectedFaultError"
            )
            _, result = _raw(
                srv, "GET", f"/v1/jobs/{body['id']}/result"
            )
            assert result["seeds"] == [1]
            assert [f["seed"] for f in result["failed_seeds"]] == [2]


class TestQueueEndpoint:
    def test_no_queue_dir_is_409(self, server):
        status, body = _raw(server, "GET", "/v1/queue")
        assert status == 409
        assert "queue_dir" in body["error"]["message"]

    def test_explicit_dir_reports_staged_queue(self, server, tmp_path):
        spec = registry.get("fig7-mutuality")
        WorkQueue.create(
            tmp_path / "q", "fig7-mutuality",
            spec.params_key(smoke=True), [1, 2], 1,
        )
        status, body = _raw(
            server, "GET", f"/v1/queue?dir={tmp_path / 'q'}"
        )
        assert status == 200
        assert body["queue_dir"] == str(tmp_path / "q")
        assert len(body["sweeps"]) == 1
        assert body["sweeps"][0]["pending"] == 2

    def test_profile_queue_dir_is_the_default(self, tmp_path):
        profile = ExecutionProfile(
            backend="distributed", workers=1,
            queue_dir=str(tmp_path / "q"), no_cache=True,
        )
        with JobServer(profile=profile) as srv:
            status, body = _raw(srv, "GET", "/v1/queue")
            assert status == 200
            assert body["queue_dir"] == str(tmp_path / "q")
            assert body["sweeps"] == []
