"""HTTP-level tests for the ``repro serve`` JSON API."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import Client, ExecutionProfile, SweepSpec
from repro.service import JobServer
from repro.simulation import registry
from repro.simulation.distributed import WorkQueue
from repro.simulation.sweep import execute_sweep

SPEC = SweepSpec("fig7-mutuality", seeds=[1], smoke=True)


def _raw(server, method, path, payload=None, body=None):
    """One raw request; returns (status, parsed body) without raising."""
    data = body
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        f"{server.url}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _wait_done(server, job_id, timeout=60.0):
    record = server.table.get(job_id)
    assert record is not None and record.wait(timeout)
    return record


@pytest.fixture(scope="module")
def server():
    with JobServer(profile=ExecutionProfile(no_cache=True)) as srv:
        yield srv


class TestSubmitSweep:
    def test_bare_spec_payload(self, server):
        status, body = _raw(
            server, "POST", "/v1/sweeps", SPEC.to_payload()
        )
        assert status == 201
        assert body["kind"] == "sweep"
        assert body["state"] in ("queued", "running")
        assert body["spec"] == SPEC.to_payload()
        record = _wait_done(server, body["id"])
        assert record.state() == "done"

    def test_spec_with_profile_envelope(self, server):
        status, body = _raw(server, "POST", "/v1/sweeps", {
            "spec": SPEC.to_payload(),
            "profile": {"workers": 1, "no_cache": True},
        })
        assert status == 201
        _wait_done(server, body["id"])

    def test_result_matches_inprocess_engine(self, server):
        status, body = _raw(
            server, "POST", "/v1/sweeps", SPEC.to_payload()
        )
        record = _wait_done(server, body["id"])
        status, result = _raw(
            server, "GET", f"/v1/jobs/{body['id']}/result"
        )
        assert status == 200
        oracle = execute_sweep(SPEC, ExecutionProfile(no_cache=True))
        from repro.analysis.export import sweep_to_payload

        expected = sweep_to_payload(oracle)
        for volatile in ("timing", "seed_runtimes"):
            expected.pop(volatile)
            result.pop(volatile)
        assert result == expected


class TestValidation:
    def test_unknown_scenario_is_400_with_registry_message(self, server):
        status, body = _raw(server, "POST", "/v1/sweeps", {
            "scenario": "fig99-nope", "seeds": [1],
        })
        assert status == 400
        message = body["error"]["message"]
        assert "unknown scenario 'fig99-nope'" in message
        assert "fig7-mutuality" in message  # names the known set

    def test_unknown_override_is_400(self, server):
        status, body = _raw(server, "POST", "/v1/sweeps", {
            "scenario": "fig7-mutuality", "seeds": [1],
            "overrides": {"bogus_param": 1},
        })
        assert status == 400
        assert "bogus" in body["error"]["message"]

    def test_bad_profile_is_400(self, server):
        status, body = _raw(server, "POST", "/v1/sweeps", {
            "spec": SPEC.to_payload(), "profile": {"workers": 0},
        })
        assert status == 400
        assert "workers" in body["error"]["message"]

    def test_conflicting_profile_is_400(self, server):
        status, body = _raw(server, "POST", "/v1/sweeps", {
            "spec": SPEC.to_payload(),
            "profile": {"no_cache": True, "cache_dir": "/tmp/x"},
        })
        assert status == 400
        assert "no_cache" in body["error"]["message"]

    def test_invalid_json_body_is_400(self, server):
        status, body = _raw(
            server, "POST", "/v1/sweeps", body=b"{not json"
        )
        assert status == 400
        assert "not valid JSON" in body["error"]["message"]

    def test_empty_body_is_400(self, server):
        status, body = _raw(server, "POST", "/v1/sweeps", body=b"")
        assert status == 400

    def test_non_object_body_is_400(self, server):
        status, body = _raw(server, "POST", "/v1/sweeps", payload=[1, 2])
        assert status == 400

    def test_unknown_envelope_field_is_400(self, server):
        status, body = _raw(server, "POST", "/v1/sweeps", {
            "spec": SPEC.to_payload(), "sched": "asap",
        })
        assert status == 400
        assert "sched" in body["error"]["message"]

    def test_bad_manifest_is_400(self, server):
        status, body = _raw(server, "POST", "/v1/campaigns", {
            "sweeps": [],
        })
        assert status == 400
        assert "sweeps" in body["error"]["message"]


class TestJobEndpoints:
    def test_unknown_job_is_404(self, server):
        for path in ("/v1/jobs/job-424242",
                     "/v1/jobs/job-424242/result"):
            status, body = _raw(server, "GET", path)
            assert status == 404
            assert "job-424242" in body["error"]["message"]
        status, _ = _raw(server, "DELETE", "/v1/jobs/job-424242")
        assert status == 404

    def test_unknown_path_is_404(self, server):
        status, body = _raw(server, "GET", "/v2/jobs")
        assert status == 404
        status, body = _raw(server, "GET", "/v1/sweeps")
        assert status == 404

    def test_jobs_listing(self, server):
        _, body = _raw(server, "POST", "/v1/sweeps", SPEC.to_payload())
        _wait_done(server, body["id"])
        status, listing = _raw(server, "GET", "/v1/jobs")
        assert status == 200
        ids = [job["id"] for job in listing["jobs"]]
        assert body["id"] in ids
        assert ids == sorted(ids)

    def test_health_counts_jobs(self, server):
        status, body = _raw(server, "GET", "/v1/health")
        assert status == 200
        assert body["status"] == "ok"
        assert isinstance(body["jobs"], dict)

    def test_campaign_submit_and_result(self, server):
        manifest = {
            "name": "pair",
            "sweeps": [
                SPEC.to_payload(),
                {"scenario": "fig7-mutuality", "seed_count": 1,
                 "first_seed": 2, "smoke": True},
            ],
        }
        status, body = _raw(server, "POST", "/v1/campaigns", manifest)
        assert status == 201
        assert body["kind"] == "campaign"
        assert body["labels"] == ["fig7-mutuality", "fig7-mutuality#2"]
        assert body["name"] == "pair"
        _wait_done(server, body["id"])
        status, result = _raw(
            server, "GET", f"/v1/jobs/{body['id']}/result"
        )
        assert status == 200
        assert sorted(result) == ["fig7-mutuality", "fig7-mutuality#2"]
        assert result["fig7-mutuality#2"]["seeds"] == [2]


class TestResultStates:
    def test_result_before_done_is_409(self):
        """A queued job's result is a 409 naming the state."""
        gate = threading.Event()

        class _Handle:
            def result(self):
                gate.wait(10.0)
                raise RuntimeError("never resolves in this test")

            def cancel(self):
                return False

        class _Client:
            profile = ExecutionProfile()

            def submit(self, spec, profile=None):
                return _Handle()

        with JobServer(client=_Client()) as srv:
            _, blocker = _raw(
                srv, "POST", "/v1/sweeps", SPEC.to_payload()
            )
            _, queued = _raw(
                srv, "POST", "/v1/sweeps", SPEC.to_payload()
            )
            status, body = _raw(
                srv, "GET", f"/v1/jobs/{queued['id']}/result"
            )
            assert status == 409
            assert body["error"]["state"] == "queued"
            assert "still queued" in body["error"]["message"]
            gate.set()

    def test_cancelled_result_is_409_and_delete_is_honest(self):
        gate = threading.Event()
        started = []

        class _Handle:
            def result(self):
                started.append(True)
                gate.wait(10.0)
                return execute_sweep(
                    SPEC, ExecutionProfile(no_cache=True)
                )

            def cancel(self):
                return False

        class _Client:
            profile = ExecutionProfile()

            def submit(self, spec, profile=None):
                return _Handle()

        with JobServer(client=_Client()) as srv:
            _, blocker = _raw(
                srv, "POST", "/v1/sweeps", SPEC.to_payload()
            )
            _, victim = _raw(
                srv, "POST", "/v1/sweeps", SPEC.to_payload()
            )
            status, body = _raw(
                srv, "DELETE", f"/v1/jobs/{victim['id']}"
            )
            assert status == 200
            assert body == {
                "cancelled": True, "id": victim["id"],
                "state": "cancelled",
            }
            status, body = _raw(
                srv, "GET", f"/v1/jobs/{victim['id']}/result"
            )
            assert status == 409
            assert body["error"]["state"] == "cancelled"
            gate.set()
            _wait_done(srv, blocker["id"])
            # The victim never executed.
            assert len(started) == 1
            # Cancelling a finished job spares nothing.
            status, body = _raw(
                srv, "DELETE", f"/v1/jobs/{blocker['id']}"
            )
            assert status == 200
            assert body["cancelled"] is False

    def test_runtime_failure_is_500_with_error_body(self):
        with JobServer(profile=ExecutionProfile(no_cache=True)) as srv:
            spec = SweepSpec(
                "fig7-mutuality", seeds=[1], smoke=True,
                overrides={"threshold": "not-a-number"},
            )
            _, body = _raw(
                srv, "POST", "/v1/sweeps", spec.to_payload()
            )
            record = _wait_done(srv, body["id"])
            assert record.state() == "failed"
            status, job = _raw(srv, "GET", f"/v1/jobs/{body['id']}")
            assert status == 200
            assert job["state"] == "failed"
            assert job["error"]["message"]
            status, result = _raw(
                srv, "GET", f"/v1/jobs/{body['id']}/result"
            )
            assert status == 500
            assert result["error"]["state"] == "failed"

    def test_quarantined_seeds_ride_in_the_status_body(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_WORKER_FAULT", "raise:2")
        profile = ExecutionProfile(
            no_cache=True, max_attempts=1, on_error="collect"
        )
        with JobServer(profile=profile) as srv:
            spec = SweepSpec("fig7-mutuality", seeds=[1, 2], smoke=True)
            _, body = _raw(
                srv, "POST", "/v1/sweeps", spec.to_payload()
            )
            record = _wait_done(srv, body["id"])
            assert record.state() == "done"
            _, job = _raw(srv, "GET", f"/v1/jobs/{body['id']}")
            assert [f["seed"] for f in job["failed_seeds"]] == [2]
            assert job["failed_seeds"][0]["error_type"] == (
                "InjectedFaultError"
            )
            _, result = _raw(
                srv, "GET", f"/v1/jobs/{body['id']}/result"
            )
            assert result["seeds"] == [1]
            assert [f["seed"] for f in result["failed_seeds"]] == [2]


class TestQueueEndpoint:
    def test_no_queue_dir_is_409(self, server):
        status, body = _raw(server, "GET", "/v1/queue")
        assert status == 409
        assert "queue_dir" in body["error"]["message"]

    def test_explicit_dir_reports_staged_queue(self, server, tmp_path):
        spec = registry.get("fig7-mutuality")
        WorkQueue.create(
            tmp_path / "q", "fig7-mutuality",
            spec.params_key(smoke=True), [1, 2], 1,
        )
        status, body = _raw(
            server, "GET", f"/v1/queue?dir={tmp_path / 'q'}"
        )
        assert status == 200
        assert body["queue_dir"] == str(tmp_path / "q")
        assert len(body["sweeps"]) == 1
        assert body["sweeps"][0]["pending"] == 2

    def test_missing_explicit_dir_is_400(self, server, tmp_path):
        """Satellite: a bad ``?dir=`` is a structured 400 with the
        CLI's message shape, not a traceback 500."""
        status, body = _raw(
            server, "GET", f"/v1/queue?dir={tmp_path / 'nope'}"
        )
        assert status == 400
        assert "does not exist" in body["error"]["message"]
        assert str(tmp_path / "nope") in body["error"]["message"]

    def test_file_as_explicit_dir_is_400(self, server, tmp_path):
        target = tmp_path / "queue.txt"
        target.write_text("not a directory")
        status, body = _raw(server, "GET", f"/v1/queue?dir={target}")
        assert status == 400
        assert "is not a directory" in body["error"]["message"]

    def test_profile_queue_dir_is_the_default(self, tmp_path):
        profile = ExecutionProfile(
            backend="distributed", workers=1,
            queue_dir=str(tmp_path / "q"), no_cache=True,
        )
        with JobServer(profile=profile) as srv:
            status, body = _raw(srv, "GET", "/v1/queue")
            assert status == 200
            assert body["queue_dir"] == str(tmp_path / "q")
            assert body["sweeps"] == []


def _gated_server(**kwargs):
    """A server whose single job parks until the returned gate opens."""
    gate = threading.Event()

    class _Handle:
        def result(self):
            gate.wait(30.0)
            return execute_sweep(SPEC, ExecutionProfile(no_cache=True))

        def cancel(self):
            return False

    class _Client:
        profile = ExecutionProfile()

        def submit(self, spec, profile=None):
            return _Handle()

    return gate, JobServer(client=_Client(), **kwargs)


class TestLongPoll:
    def test_wait_zero_answers_immediately(self):
        gate, server = _gated_server()
        with server:
            _, body = _raw(server, "POST", "/v1/sweeps", SPEC.to_payload())
            started = time.monotonic()
            status, job = _raw(
                server, "GET", f"/v1/jobs/{body['id']}?wait=0"
            )
            elapsed = time.monotonic() - started
            assert status == 200
            assert job["state"] in ("queued", "running")
            assert elapsed < 1.0
            gate.set()

    def test_invalid_wait_is_400(self, server):
        _, body = _raw(server, "POST", "/v1/sweeps", SPEC.to_payload())
        job_id = body["id"]
        for raw, fragment in (
            ("abc", "number of seconds"),
            ("-1", "finite number"),
            ("nan", "finite number"),
            ("inf", "finite number"),
        ):
            status, error = _raw(
                server, "GET", f"/v1/jobs/{job_id}?wait={raw}"
            )
            assert status == 400, raw
            assert fragment in error["error"]["message"], raw
        _wait_done(server, job_id)

    def test_wait_above_the_cap_is_clamped(self):
        gate, server = _gated_server(max_poll_wait=0.2)
        with server:
            _, body = _raw(server, "POST", "/v1/sweeps", SPEC.to_payload())
            started = time.monotonic()
            status, job = _raw(
                server, "GET", f"/v1/jobs/{body['id']}?wait=30"
            )
            elapsed = time.monotonic() - started
            assert status == 200
            assert job["state"] in ("queued", "running")
            # The server parked ~max_poll_wait, nowhere near 30s.
            assert 0.1 <= elapsed < 5.0
            gate.set()

    def test_long_poll_returns_early_when_the_job_finishes(self):
        gate, server = _gated_server()
        with server:
            _, body = _raw(server, "POST", "/v1/sweeps", SPEC.to_payload())
            opener = threading.Timer(0.2, gate.set)
            opener.start()
            try:
                started = time.monotonic()
                status, job = _raw(
                    server, "GET", f"/v1/jobs/{body['id']}?wait=20"
                )
                elapsed = time.monotonic() - started
                assert status == 200
                assert job["state"] == "done"
                # Parked past the finish moment, answered well before
                # the requested 20s window elapsed.
                assert elapsed < 10.0
            finally:
                opener.cancel()


class TestRestartRecoveryOverHTTP:
    def test_restart_round_trip_is_bit_identical(self, tmp_path):
        """The tentpole acceptance: submit over HTTP, kill the server,
        restart on the same ``--state-dir``, and fetch the recovered
        result — identical to the in-process oracle."""
        state = tmp_path / "state"
        with JobServer(
            profile=ExecutionProfile(no_cache=True), state_dir=state
        ) as first:
            _, body = _raw(first, "POST", "/v1/sweeps", SPEC.to_payload())
            job_id = body["id"]
            _wait_done(first, job_id)

        with JobServer(
            profile=ExecutionProfile(no_cache=True), state_dir=state
        ) as second:
            status, listing = _raw(second, "GET", "/v1/jobs")
            assert status == 200
            assert [job["id"] for job in listing["jobs"]] == [job_id]
            assert listing["jobs"][0]["state"] == "done"
            status, result = _raw(
                second, "GET", f"/v1/jobs/{job_id}/result"
            )
            assert status == 200
            oracle = execute_sweep(SPEC, ExecutionProfile(no_cache=True))
            from repro.analysis.export import sweep_to_payload

            expected = sweep_to_payload(oracle)
            for volatile in ("timing", "seed_runtimes"):
                expected.pop(volatile)
                result.pop(volatile)
            assert result == expected
            # Health names the state dir; id allocation resumed past
            # the recovered job.
            _, health = _raw(second, "GET", "/v1/health")
            assert health["state_dir"] == str(state)
            _, fresh = _raw(second, "POST", "/v1/sweeps", SPEC.to_payload())
            assert fresh["id"] == "job-000002"
            _wait_done(second, fresh["id"])
