"""Unit tests for the in-process job table behind ``repro serve``."""

import threading

import pytest

from repro.api import Client, ExecutionProfile, SweepSpec
from repro.service import JobTable
from repro.simulation.sweep import execute_sweep

SPEC = SweepSpec("fig7-mutuality", seeds=[1], smoke=True)


class _GateHandle:
    """A handle whose work blocks until the client's gate opens."""

    def __init__(self, client, spec):
        self.client = client
        self.spec = spec
        self.cancelled = False

    def result(self):
        self.client.started.append(self.spec)
        self.client.gate.wait(10.0)
        return self.client.outcome

    def cancel(self):
        self.cancelled = True
        return False  # a running sweep is never spared

    def progress(self):
        return (0, 1)


class _GateClient:
    """Client stand-in with deterministic timing: ``submit`` returns a
    handle whose ``result()`` parks on an event, so tests control
    exactly when a "running" job finishes."""

    def __init__(self, outcome):
        self.profile = ExecutionProfile()
        self.outcome = outcome
        self.gate = threading.Event()
        self.started = []

    def submit(self, spec, profile=None):
        return _GateHandle(self, spec)

    def submit_campaign(self, specs, profile=None):
        return _GateHandle(self, tuple(specs))


@pytest.fixture(scope="module")
def one_seed_sweep():
    return execute_sweep(SPEC, ExecutionProfile(no_cache=True))


@pytest.fixture
def gate_table(one_seed_sweep):
    client = _GateClient(one_seed_sweep)
    table = JobTable(client, parallel_jobs=1)
    yield client, table
    client.gate.set()
    table.close(wait=True, timeout=5.0)


class TestLifecycle:
    def test_job_runs_to_done(self, gate_table):
        client, table = gate_table
        record = table.submit_sweep(SPEC)
        assert record.job_id == "job-000001"
        client.gate.set()
        assert record.wait(10.0)
        assert record.state() == "done"
        payload = record.result_payload()
        assert payload["scenario"] == "fig7-mutuality"
        assert payload["spec"] == SPEC.to_payload()

    def test_status_payload_shape(self, gate_table):
        client, table = gate_table
        record = table.submit_sweep(SPEC)
        status = record.status_payload()
        assert status["id"] == record.job_id
        assert status["kind"] == "sweep"
        assert status["spec"] == SPEC.to_payload()
        client.gate.set()
        record.wait(10.0)
        assert record.status_payload()["failed_seeds"] == []

    def test_jobs_execute_in_submission_order(self, gate_table):
        client, table = gate_table
        records = [table.submit_sweep(SPEC) for _ in range(3)]
        client.gate.set()
        for record in records:
            assert record.wait(10.0)
        assert client.started == [SPEC] * 3
        assert [r.job_id for r in table.jobs()] == [
            "job-000001", "job-000002", "job-000003",
        ]

    def test_lookup_unknown_job(self, gate_table):
        _, table = gate_table
        assert table.get("job-999999") is None


class TestCancellation:
    def test_queued_job_never_runs(self, gate_table):
        client, table = gate_table
        blocker = table.submit_sweep(SPEC)
        victim = table.submit_sweep(SPEC)
        # The single dispatcher is parked inside the blocker; the
        # victim is still queued and cancellable.
        assert blocker.wait(0.0) is False
        assert victim.cancel() is True
        assert victim.state() == "cancelled"
        client.gate.set()
        assert blocker.wait(10.0)
        # The dispatcher skipped the cancelled record entirely.
        assert client.started == [SPEC]
        assert victim.result_payload() is None
        assert victim.status_payload()["error"]["error_type"] == (
            "CancelledError"
        )

    def test_running_sweep_is_not_spared(self, gate_table):
        client, table = gate_table
        record = table.submit_sweep(SPEC)
        # Wait for the dispatcher to start the work.
        for _ in range(200):
            if client.started:
                break
            threading.Event().wait(0.01)
        assert record.cancel() is False
        client.gate.set()
        assert record.wait(10.0)
        assert record.state() == "done"

    def test_terminal_job_cancel_is_false(self, gate_table):
        client, table = gate_table
        record = table.submit_sweep(SPEC)
        client.gate.set()
        assert record.wait(10.0)
        assert record.cancel() is False


class TestValidationAndShutdown:
    def test_rejects_non_spec(self, gate_table):
        _, table = gate_table
        with pytest.raises(TypeError):
            table.submit_sweep({"scenario": "fig7-mutuality"})

    def test_rejects_non_profile(self, gate_table):
        _, table = gate_table
        with pytest.raises(TypeError):
            table.submit_sweep(SPEC, profile={"workers": 2})

    def test_rejects_empty_campaign(self, gate_table):
        _, table = gate_table
        with pytest.raises(ValueError):
            table.submit_campaign([])

    def test_rejects_parallel_jobs_below_one(self):
        with pytest.raises(ValueError):
            JobTable(Client(), parallel_jobs=0)

    def test_close_cancels_unreached_queued_jobs(self, one_seed_sweep):
        """Shutdown strands nothing: a queued job no dispatcher ever
        reached flips to ``cancelled`` with a ``server_shutdown``
        reason, and anyone blocked in ``wait()`` unblocks."""
        client = _GateClient(one_seed_sweep)
        table = JobTable(client, parallel_jobs=1)
        blocker = table.submit_sweep(SPEC)
        victim = table.submit_sweep(SPEC)
        for _ in range(200):
            if client.started:
                break
            threading.Event().wait(0.01)
        outcomes = []
        waiter = threading.Thread(
            target=lambda: outcomes.append(victim.wait(10.0))
        )
        waiter.start()
        table.close()
        waiter.join(5.0)
        assert outcomes == [True]
        assert victim.state() == "cancelled"
        error = victim.status_payload()["error"]
        assert error["error_type"] == "CancelledError"
        assert error["reason"] == "server_shutdown"
        # The sweep already running is not spared by shutdown.
        client.gate.set()
        assert blocker.wait(10.0)
        assert blocker.state() == "done"
        assert client.started == [SPEC]

    def test_closed_table_rejects_submissions(self, one_seed_sweep):
        client = _GateClient(one_seed_sweep)
        client.gate.set()
        table = JobTable(client, parallel_jobs=1)
        table.close(wait=True, timeout=5.0)
        with pytest.raises(RuntimeError):
            table.submit_sweep(SPEC)


class TestRealClient:
    def test_sweep_through_real_client_matches_oracle(
        self, one_seed_sweep
    ):
        table = JobTable(
            Client(ExecutionProfile(no_cache=True)), parallel_jobs=1
        )
        try:
            record = table.submit_sweep(SPEC)
            assert record.wait(60.0)
            assert record.state() == "done"
            from repro.analysis.export import sweep_to_payload

            expected = sweep_to_payload(one_seed_sweep)
            actual = record.result_payload()
            for volatile in ("timing", "seed_runtimes"):
                expected.pop(volatile)
                actual = dict(actual)
                actual.pop(volatile)
            assert actual == expected
        finally:
            table.close(wait=True, timeout=5.0)

    def test_campaign_through_real_client(self):
        table = JobTable(
            Client(ExecutionProfile(no_cache=True)), parallel_jobs=1
        )
        try:
            record = table.submit_campaign(
                [SPEC, SweepSpec("fig7-mutuality", seeds=[2], smoke=True)],
                name="pair",
            )
            assert record.wait(60.0)
            assert record.state() == "done"
            payload = record.result_payload()
            assert sorted(payload) == [
                "fig7-mutuality", "fig7-mutuality#2",
            ]
            status = record.status_payload()
            assert status["name"] == "pair"
            assert status["labels"] == [
                "fig7-mutuality", "fig7-mutuality#2",
            ]
            assert status["failed_seeds"] == {
                "fig7-mutuality": [], "fig7-mutuality#2": [],
            }
        finally:
            table.close(wait=True, timeout=5.0)

    def test_runtime_failure_is_structured(self):
        table = JobTable(
            Client(ExecutionProfile(no_cache=True)), parallel_jobs=1
        )
        try:
            spec = SweepSpec(
                "fig7-mutuality", seeds=[1], smoke=True,
                overrides={"threshold": "not-a-number"},
            )
            record = table.submit_sweep(spec)
            assert record.wait(60.0)
            assert record.state() == "failed"
            error = record.status_payload()["error"]
            assert error["error_type"]
            assert error["message"]
        finally:
            table.close(wait=True, timeout=5.0)
