"""Shared fixtures: small graphs, scenarios and IoT networks."""

from __future__ import annotations

import pytest

from repro.core.task import Task
from repro.socialnet.graph import SocialGraph


@pytest.fixture(autouse=True)
def _isolated_sweep_cache(tmp_path, monkeypatch):
    """Point the persistent sweep cache at a per-test directory.

    ``repro sweep`` caches by default; without this, CLI tests would
    write into (and worse, replay from) the developer's real cache,
    making second runs of the suite behave differently from the first.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "sweep-cache"))


@pytest.fixture
def triangle() -> SocialGraph:
    """Three mutually connected nodes."""
    return SocialGraph.from_edges([(0, 1), (1, 2), (0, 2)], name="triangle")


@pytest.fixture
def path_graph() -> SocialGraph:
    """A 5-node path 0-1-2-3-4."""
    return SocialGraph.from_edges(
        [(0, 1), (1, 2), (2, 3), (3, 4)], name="path"
    )


@pytest.fixture
def star_graph() -> SocialGraph:
    """Hub 0 connected to leaves 1..5."""
    return SocialGraph.from_edges(
        [(0, leaf) for leaf in range(1, 6)], name="star"
    )


@pytest.fixture
def two_cliques() -> SocialGraph:
    """Two 4-cliques joined by a single bridge edge (3-4)."""
    edges = []
    for group in ((0, 1, 2, 3), (4, 5, 6, 7)):
        for i, u in enumerate(group):
            for v in group[i + 1:]:
                edges.append((u, v))
    edges.append((3, 4))
    return SocialGraph.from_edges(edges, name="two-cliques")


@pytest.fixture
def gps_task() -> Task:
    return Task("gps-task", characteristics=("gps",))


@pytest.fixture
def image_task() -> Task:
    return Task("image-task", characteristics=("image",))


@pytest.fixture
def traffic_task() -> Task:
    """Two-characteristic task used by the inference examples."""
    return Task("traffic", characteristics=("gps", "image"))
