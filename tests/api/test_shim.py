"""The run_sweep compatibility shim: deprecation path and legacy modes.

The shim must (a) stay bit-identical to the spec/profile engine it now
wraps, (b) emit a one-time DeprecationWarning when called with raw
execution kwargs, and (c) keep accepting the historical combinations
the strict new API rejects (documented legacy allowances).
"""

import json
import warnings

import pytest

from repro.analysis.export import load_sweep, sweep_to_json
from repro.api import ExecutionProfile, SweepSpec
from repro.simulation import sweep as sweep_module
from repro.simulation.sweep import execute_sweep, run_sweep, seed_range


@pytest.fixture
def fresh_deprecation(monkeypatch):
    """Arm the one-time warning as if this were a new process."""
    monkeypatch.setattr(sweep_module, "_DEPRECATION_WARNED", False)


class TestDeprecationPath:
    def test_execution_kwargs_warn_once_with_the_mapping(
        self, fresh_deprecation
    ):
        with pytest.warns(DeprecationWarning, match="repro.api") as caught:
            run_sweep("fig15-environment", [1], smoke=True, workers=2,
                      backend="thread")
        message = str(caught[0].message)
        # The mapping is documented in the warning itself.
        assert "ExecutionProfile" in message
        assert "no_cache=True" in message
        # Second call with kwargs: silent (once per process).
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_sweep("fig15-environment", [1], smoke=True, workers=2,
                      backend="thread")

    def test_plain_calls_do_not_warn(self, fresh_deprecation):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_sweep("fig15-environment", [1], smoke=True)

    @pytest.mark.parametrize("kwargs", [
        {"workers": 2},
        {"backend": "thread"},
        {"chunk_size": 1},
        {"cache_dir": "unused"},
    ])
    def test_each_execution_kwarg_triggers_it(
        self, kwargs, fresh_deprecation, tmp_path
    ):
        if "cache_dir" in kwargs:
            kwargs = {"cache_dir": str(tmp_path)}
        with pytest.warns(DeprecationWarning):
            run_sweep("fig15-environment", [1], smoke=True, **kwargs)


class TestShimEquivalence:
    def test_shim_matches_the_engine_bitwise(self):
        seeds = seed_range(3)
        via_shim = run_sweep("fig15-environment", seeds, workers=1,
                             smoke=True)
        via_engine = execute_sweep(
            SweepSpec("fig15-environment", seeds, smoke=True),
            ExecutionProfile(no_cache=True),
        )
        assert via_shim.per_seed == via_engine.per_seed
        assert via_shim.mean == via_engine.mean
        assert via_shim.variance == via_engine.variance
        assert via_shim.spec == via_engine.spec

    def test_shim_overrides_flow_into_the_spec(self):
        sweep = run_sweep("fig7-mutuality", [1], smoke=True,
                          overrides={"threshold": 0.4})
        assert sweep.spec["overrides"] == {"threshold": 0.4}

    def test_legacy_inline_drain_still_accepted(self, tmp_path):
        # The new API rejects distributed + workers=0 + no queue dir;
        # the shim keeps the historical coordinator-drains-inline mode.
        sweep = run_sweep("fig15-environment", [1], smoke=True,
                          workers=0, backend="distributed",
                          cache_dir=tmp_path)
        assert sweep.tasks_total == 1
        with pytest.raises(ValueError, match="queue_dir"):
            ExecutionProfile(workers=0, backend="distributed")


class TestLoadSweepSpecCompat:
    def test_new_exports_carry_the_spec_block(self):
        sweep = run_sweep("fig15-environment", [1, 2], smoke=True)
        payload = load_sweep(sweep_to_json(sweep))
        assert payload["spec"] == {
            "scenario": "fig15-environment",
            "seeds": [1, 2],
            "smoke": True,
            "overrides": {},
        }
        # The spec block round-trips into a validated SweepSpec.
        assert SweepSpec.from_payload(payload["spec"]) == SweepSpec(
            "fig15-environment", [1, 2], smoke=True
        )

    def test_pre_spec_artifacts_default_to_null(self):
        """A pre-PR-5 export (no spec block) still loads."""
        sweep = run_sweep("fig15-environment", [1], smoke=True)
        payload = json.loads(sweep_to_json(sweep))
        del payload["spec"]
        loaded = load_sweep(json.dumps(payload))
        assert loaded["spec"] is None
        assert loaded["mean"]["values"] == sweep.mean.values

    def test_pre_cache_era_artifact_still_loads(self):
        """The oldest shape: no spec, no cache, no distributed block."""
        sweep = run_sweep("fig15-environment", [1], smoke=True)
        payload = json.loads(sweep_to_json(sweep))
        for key in ("spec", "cache", "distributed"):
            del payload[key]
        loaded = load_sweep(json.dumps(payload))
        assert loaded["spec"] is None
        assert loaded["cache"]["enabled"] is False
        assert loaded["distributed"]["tasks"] == 0

    def test_malformed_spec_block_rejected(self):
        sweep = run_sweep("fig15-environment", [1], smoke=True)
        payload = json.loads(sweep_to_json(sweep))
        payload["spec"] = [1, 2]
        with pytest.raises(ValueError, match="spec block"):
            load_sweep(json.dumps(payload))
