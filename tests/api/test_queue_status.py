"""Queue observability: pending/leased/done, lease ages, steal history,
quarantined seeds — and robustness to files caught mid-write."""

import json
import os
import threading

from repro.simulation import registry
from repro.simulation.distributed import (
    WorkQueue,
    queue_status,
    worker_loop,
)

SCENARIO = "fig15-environment"


def _stage(queue_dir, seeds=(1, 2, 3), spec_payload=None):
    spec = registry.get(SCENARIO)
    return WorkQueue.create(
        queue_dir, SCENARIO, spec.params_key(smoke=True), list(seeds), 1,
        spec_payload=spec_payload,
    )


class TestQueueStatus:
    def test_empty_directory_reports_nothing(self, tmp_path):
        assert queue_status(tmp_path) == []
        assert queue_status(tmp_path / "missing") == []

    def test_fresh_sweep_is_all_pending(self, tmp_path):
        _stage(tmp_path)
        (status,) = queue_status(tmp_path)
        assert status.scenario == SCENARIO
        assert status.tasks == 3
        assert status.done == 0
        assert status.pending == 3
        assert status.leased == ()
        assert status.steals == 0 and status.repairs == 0
        assert not status.complete
        assert status.version_match

    def test_live_lease_shows_owner_and_age(self, tmp_path):
        queue = _stage(tmp_path)
        claim = queue.claim("task-0001", "worker-abc")
        assert claim is not None
        (status,) = queue_status(tmp_path)
        assert status.pending == 2
        (lease,) = status.leased
        assert lease.task_id == "task-0001"
        assert lease.owner == "worker-abc"
        assert lease.age_seconds >= 0.0

    def test_steal_history_names_the_stolen_task(self, tmp_path):
        queue = _stage(tmp_path)
        claim = queue.claim("task-0000", "dead-worker")
        assert claim is not None
        # Back-date the heartbeat so the lease looks abandoned...
        os.utime(claim.lease_path, (1, 1))
        # ...and let another worker steal and finish everything.
        stats = worker_loop(tmp_path, None, drain=True, lease_ttl=5.0)
        assert stats.steals == 1
        (status,) = queue_status(tmp_path)
        assert status.complete
        assert status.done == 3 and status.pending == 0
        assert status.steals == 1
        assert status.steal_events == ("task-0000",)
        assert status.requeues == 1

    def test_spec_payload_rides_in_the_manifest(self, tmp_path):
        payload = {
            "scenario": SCENARIO, "seeds": [1, 2, 3],
            "smoke": True, "overrides": {},
        }
        _stage(tmp_path, spec_payload=payload)
        (status,) = queue_status(tmp_path)
        assert status.spec == payload

    def test_version_skew_is_flagged(self, tmp_path):
        queue = _stage(tmp_path)
        manifest_path = queue.sweep_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["code_version"] = "0000000000000000"
        manifest_path.write_text(json.dumps(manifest))
        (status,) = queue_status(tmp_path)
        assert not status.version_match

    def test_payload_is_json_safe(self, tmp_path):
        queue = _stage(tmp_path)
        queue.claim("task-0002", "w1")
        (status,) = queue_status(tmp_path)
        text = json.dumps(status.to_payload())
        decoded = json.loads(text)
        assert decoded["pending"] == 2
        assert decoded["leased"][0]["owner"] == "w1"

    def test_quarantined_seeds_are_reported(self, tmp_path, monkeypatch):
        _stage(tmp_path, seeds=(1, 2))
        monkeypatch.setenv("REPRO_WORKER_FAULT", "raise:2")
        worker_loop(tmp_path, None, drain=True)
        (status,) = queue_status(tmp_path)
        assert status.complete  # quarantine still drains the sweep
        (record,) = status.quarantined
        assert record.seed == 2
        assert record.task_id == "task-0001"
        assert record.error_type == "InjectedFaultError"
        assert record.attempts >= 1
        payload = json.loads(json.dumps(status.to_payload()))
        assert payload["quarantined"][0]["seed"] == 2


class TestScanRaces:
    def test_partially_written_done_marker_counts_as_pending(
        self, tmp_path
    ):
        queue = _stage(tmp_path)
        # A non-atomic writer caught mid-write: truncated JSON.
        (queue.sweep_dir / "done" / "task-0000.json").write_text(
            '{"task": "task-0000", "resul'
        )
        (status,) = queue_status(tmp_path)
        assert status.done == 0
        assert status.pending == 3
        assert not status.complete

    def test_half_written_manifest_is_skipped_not_fatal(self, tmp_path):
        _stage(tmp_path)
        bogus = tmp_path / "sweep-deadbeef-00000000"
        bogus.mkdir()
        (bogus / "manifest.json").write_text('{"sweep": "sweep-dead')
        (status,) = queue_status(tmp_path)  # only the real sweep
        assert status.tasks == 3

    def test_status_never_crashes_against_concurrent_writers(
        self, tmp_path
    ):
        """The regression: a task/done/quarantine file being (re)written
        concurrently must read as pending, never raise mid-scan."""
        queue = _stage(tmp_path)
        done = queue.sweep_dir / "done" / "task-0001.json"
        quarantine = queue.sweep_dir / "quarantine" / "t.seed-2.json"
        payloads = [
            '{"task": "task-0001", "results": {}}',
            '{"sweep": "s", "task": "t", "failure": {"seed": 2, '
            '"error_type": "E", "message": "m", "attempts": 1}}',
        ]
        stop = threading.Event()
        errors = []

        def writer():
            while not stop.is_set():
                for path, text in ((done, payloads[0]),
                                   (quarantine, payloads[1])):
                    for cut in (7, len(text)):  # partial, then whole
                        try:
                            path.write_text(text[:cut])
                        except OSError:  # pragma: no cover
                            pass
                for path in (done, quarantine):
                    try:
                        path.unlink()
                    except OSError:
                        pass

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                (status,) = queue_status(tmp_path)
                assert status.done in (0, 1)
                assert status.done + status.pending == status.tasks
                assert len(status.quarantined) in (0, 1)
        except Exception as error:  # pragma: no cover
            errors.append(error)
        finally:
            stop.set()
            thread.join()
        assert not errors
