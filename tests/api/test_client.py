"""Client facade tests: handles, campaigns, and the oracle contract.

The headline assertion (the PR's acceptance criterion) lives in
``TestCampaignEquivalence``: a campaign over **every registered
scenario** produces per-scenario results bit-identical to individual
``run_sweep`` calls — ``==`` on the dataclasses, no tolerance.
"""

import threading

import pytest

from repro.analysis.export import load_sweep
from repro.api import (
    CampaignResult,
    CancelledError,
    Client,
    ExecutionProfile,
    SweepSpec,
)
from repro.simulation import registry
from repro.simulation import sweep as sweep_module
from repro.simulation.sweep import run_sweep

SEEDS = [1, 2]
_FAST = ExecutionProfile(no_cache=True)


def _oracle(name, seeds=SEEDS):
    return run_sweep(name, seeds, workers=1, smoke=True)


class TestSubmit:
    def test_submit_resolves_to_the_oracle_result(self):
        handle = Client(_FAST).submit(
            SweepSpec("fig15-environment", SEEDS, smoke=True)
        )
        result = handle.result(timeout=120)
        oracle = _oracle("fig15-environment")
        assert result.per_seed == oracle.per_seed
        assert result.mean == oracle.mean
        assert result.variance == oracle.variance
        assert handle.status() == "done"
        assert handle.done()

    def test_submit_is_non_blocking_and_waitable(self, monkeypatch):
        gate = threading.Event()
        real = sweep_module.execute_sweep

        def slow(spec, profile):
            gate.wait(30)
            return real(spec, profile)

        monkeypatch.setattr(sweep_module, "execute_sweep", slow)
        handle = Client(_FAST).submit(
            SweepSpec("fig15-environment", [1], smoke=True)
        )
        assert handle.status() in ("queued", "running")
        assert not handle.wait(timeout=0.05)
        gate.set()
        assert handle.wait(timeout=30)
        assert handle.status() == "done"

    def test_failures_surface_through_result(self, monkeypatch):
        def boom(spec, profile):
            raise RuntimeError("scenario exploded")

        monkeypatch.setattr(sweep_module, "execute_sweep", boom)
        handle = Client(_FAST).submit(
            SweepSpec("fig15-environment", [1], smoke=True)
        )
        handle.wait(timeout=30)
        assert handle.status() == "failed"
        with pytest.raises(RuntimeError, match="exploded"):
            handle.result()

    def test_result_timeout_raises(self, monkeypatch):
        gate = threading.Event()
        monkeypatch.setattr(
            sweep_module, "execute_sweep",
            lambda spec, profile: gate.wait(30),
        )
        handle = Client(_FAST).submit(
            SweepSpec("fig15-environment", [1], smoke=True)
        )
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.05)
        gate.set()
        handle.wait(timeout=30)

    def test_type_errors_are_eager(self):
        client = Client(_FAST)
        with pytest.raises(TypeError, match="SweepSpec"):
            client.submit("fig15-environment")
        with pytest.raises(TypeError, match="ExecutionProfile"):
            client.submit(
                SweepSpec("fig15-environment", [1], smoke=True),
                profile="fast",
            )

    def test_cancel_before_start_prevents_execution(self, monkeypatch):
        ran = []

        class ManualThread:
            def __init__(self, target=None, daemon=None):
                self._target = target

            def start(self):
                pass  # the test drives execution explicitly

            def run(self):
                self._target()

        monkeypatch.setattr(
            "repro.api.client.threading.Thread", ManualThread
        )
        monkeypatch.setattr(
            sweep_module, "execute_sweep",
            lambda spec, profile: ran.append(spec),
        )
        handle = Client(_FAST).submit(
            SweepSpec("fig15-environment", [1], smoke=True)
        )
        assert handle.status() == "queued"
        assert handle.cancel() is True
        handle._thread.run()  # the would-be worker thread
        assert handle.status() == "cancelled"
        assert ran == []
        with pytest.raises(CancelledError):
            handle.result()

    def test_cancel_while_running_is_refused(self, monkeypatch):
        gate = threading.Event()
        started = threading.Event()

        def slow(spec, profile):
            started.set()
            gate.wait(30)
            return "done"

        monkeypatch.setattr(sweep_module, "execute_sweep", slow)
        handle = Client(_FAST).submit(
            SweepSpec("fig15-environment", [1], smoke=True)
        )
        assert started.wait(timeout=30)
        assert handle.cancel() is False
        gate.set()
        handle.wait(timeout=30)
        assert handle.status() == "done"


class TestCampaigns:
    def test_campaign_runs_in_order_with_progress(self):
        specs = [
            SweepSpec("fig15-environment", SEEDS, smoke=True),
            SweepSpec("fig7-mutuality", SEEDS, smoke=True),
        ]
        handle = Client(_FAST).submit_campaign(specs)
        result = handle.result(timeout=300)
        assert isinstance(result, CampaignResult)
        assert handle.progress() == (2, 2)
        assert result.labels == ("fig15-environment", "fig7-mutuality")
        assert [s.scenario for s in result.sweeps] == [
            "fig15-environment", "fig7-mutuality",
        ]

    def test_campaign_labels_dedupe_repeats(self):
        specs = [
            SweepSpec("fig15-environment", [1], smoke=True),
            SweepSpec("fig15-environment", [2], smoke=True),
        ]
        result = Client(_FAST).run_campaign(specs)
        assert result.labels == (
            "fig15-environment", "fig15-environment#2",
        )
        assert set(result.by_label()) == set(result.labels)

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Client(_FAST).submit_campaign([])

    def test_campaign_cancel_skips_remaining_specs(self, monkeypatch):
        started = threading.Event()
        release = threading.Event()
        executed = []

        def slow(spec, profile):
            executed.append(spec.scenario)
            started.set()
            release.wait(30)
            return f"result:{spec.scenario}"

        monkeypatch.setattr(sweep_module, "execute_sweep", slow)
        handle = Client(_FAST).submit_campaign([
            SweepSpec("fig15-environment", SEEDS, smoke=True),
            SweepSpec("fig7-mutuality", SEEDS, smoke=True),
        ])
        assert started.wait(timeout=30)
        assert handle.cancel() is True
        release.set()
        handle.wait(timeout=30)
        assert handle.status() == "cancelled"
        assert executed == ["fig15-environment"]
        assert handle.progress() == (1, 2)
        with pytest.raises(CancelledError, match="1 of 2"):
            handle.result()

    def test_cancel_during_last_sweep_is_refused(self, monkeypatch):
        """Nothing is spared once the final sweep is in flight, so an
        honest cancel() says no and the campaign completes."""
        started = threading.Event()
        release = threading.Event()

        def slow(spec, profile):
            started.set()
            release.wait(30)
            return f"result:{spec.scenario}"

        monkeypatch.setattr(sweep_module, "execute_sweep", slow)
        handle = Client(_FAST).submit_campaign([
            SweepSpec("fig15-environment", SEEDS, smoke=True),
        ])
        assert started.wait(timeout=30)
        assert handle.cancel() is False
        release.set()
        handle.wait(timeout=30)
        assert handle.status() == "done"
        assert len(handle.result().sweeps) == 1

    def test_cancel_distributed_campaign_leaves_queue_clean(
        self, tmp_path, monkeypatch
    ):
        """Cancelling a running distributed campaign must raise
        CancelledError AND delete every sweep dir it enqueued — no
        orphaned tasks, leases, attempt markers, or quarantine files
        to confuse the next campaign on the same queue dir."""
        from repro.simulation import distributed as distributed_module

        started = threading.Event()
        release = threading.Event()
        real_loop = distributed_module.worker_loop

        def gated_loop(*args, **kwargs):
            started.set()
            release.wait(30)
            return real_loop(*args, **kwargs)

        monkeypatch.setattr(distributed_module, "worker_loop", gated_loop)
        profile = ExecutionProfile(
            workers=0, backend="distributed",
            queue_dir=str(tmp_path / "q"), cache_dir=str(tmp_path / "c"),
        )
        handle = Client(profile).submit_campaign([
            SweepSpec("fig15-environment", [1, 2], smoke=True),
            SweepSpec("fig7-mutuality", [1, 2], smoke=True),
        ])
        # The coordinator reached its inline drain: both sweeps are
        # enqueued on disk, nothing collected yet.
        assert started.wait(timeout=30)
        assert any((tmp_path / "q").glob("sweep-*"))
        assert handle.cancel() is True
        release.set()
        handle.wait(timeout=60)
        assert handle.status() == "cancelled"
        with pytest.raises(CancelledError, match="cancelled"):
            handle.result()
        # The abort path scrubbed the queue dir completely...
        assert not any((tmp_path / "q").iterdir())
        # ...so a fresh campaign on the same dir runs to completion.
        result = Client(profile).run_campaign([
            SweepSpec("fig15-environment", [1, 2], smoke=True),
        ])
        assert result.sweeps[0].failed_seeds == []
        assert result.sweeps[0].per_seed == _oracle(
            "fig15-environment", [1, 2]
        ).per_seed

    def test_write_exports_produces_loadable_artifacts(self, tmp_path):
        result = Client(_FAST).run_campaign([
            SweepSpec("fig15-environment", SEEDS, smoke=True),
        ])
        paths = result.write_exports(tmp_path / "exports")
        assert [p.name for p in paths] == ["fig15-environment.json"]
        payload = load_sweep(paths[0].read_text())
        assert payload["mean"]["values"] == result.sweeps[0].mean.values
        assert payload["spec"]["scenario"] == "fig15-environment"


class TestCampaignEquivalence:
    def test_campaign_over_all_scenarios_matches_run_sweep(self):
        """The acceptance criterion: submit_campaign() over every
        registered scenario is bit-identical, per scenario, to the
        sequential per-scenario run_sweep() oracle."""
        specs = [
            SweepSpec(name, SEEDS, smoke=True)
            for name in registry.names()
        ]
        result = Client(_FAST).run_campaign(specs)
        assert len(result) == len(registry.names())
        for spec, sweep in zip(specs, result.sweeps):
            oracle = _oracle(spec.scenario)
            assert sweep.per_seed == oracle.per_seed, spec.scenario
            assert sweep.mean == oracle.mean, spec.scenario
            assert sweep.variance == oracle.variance, spec.scenario

    def test_distributed_campaign_multiplexes_one_queue(self, tmp_path):
        """Two sweeps share one queue dir and one two-worker fleet, and
        still match the oracle bit for bit."""
        profile = ExecutionProfile(
            workers=2, backend="distributed",
            queue_dir=str(tmp_path / "q"), cache_dir=str(tmp_path / "c"),
        )
        specs = [
            SweepSpec("fig15-environment", [1, 2, 3], smoke=True),
            SweepSpec("fig7-mutuality", SEEDS, smoke=True),
        ]
        result = Client(profile).run_campaign(specs)
        for spec, sweep in zip(specs, result.sweeps):
            oracle = _oracle(spec.scenario, list(spec.seeds))
            assert sweep.per_seed == oracle.per_seed, spec.scenario
            assert sweep.mean == oracle.mean, spec.scenario
            assert sweep.timing.backend == "distributed"
            assert sweep.tasks_total >= 1
        # The queue dir was shared and cleaned up after collection.
        assert not any((tmp_path / "q").iterdir())

    def test_warm_cache_campaign_is_a_pure_replay(self, tmp_path):
        profile = ExecutionProfile(cache_dir=str(tmp_path / "c"))
        specs = [SweepSpec("fig15-environment", SEEDS, smoke=True)]
        cold = Client(profile).run_campaign(specs)
        warm = Client(profile).run_campaign(specs)
        assert warm.sweeps[0].cache_hits == len(SEEDS)
        assert warm.sweeps[0].per_seed == cold.sweeps[0].per_seed
        assert warm.sweeps[0].timing.backend == "cache"


class TestQueueStatusFacade:
    def test_requires_a_queue_dir(self):
        with pytest.raises(ValueError, match="queue_dir"):
            Client(_FAST).queue_status()

    def test_reads_the_profile_queue(self, tmp_path):
        profile = ExecutionProfile(
            workers=1, backend="distributed", no_cache=True,
            queue_dir=str(tmp_path / "q"),
        )
        client = Client(profile)
        assert client.queue_status() == []
        spec = registry.get("fig15-environment")
        from repro.simulation.distributed import WorkQueue

        WorkQueue.create(
            tmp_path / "q", "fig15-environment",
            spec.params_key(smoke=True), [1, 2], 1,
        )
        statuses = client.queue_status()
        assert len(statuses) == 1
        assert statuses[0].tasks == 2 and statuses[0].done == 0
