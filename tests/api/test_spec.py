"""Unit tests for SweepSpec / ExecutionProfile / campaign manifests."""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.api import (
    ExecutionProfile,
    SweepSpec,
    campaign_labels,
    load_campaign_manifest,
    validate_execution,
)
from repro.simulation import registry
from repro.simulation.cache import default_cache_dir


class TestSweepSpecValidation:
    def test_unknown_scenario_names_the_known_set(self):
        with pytest.raises(KeyError, match="fig7-mutuality"):
            SweepSpec("fig99-nope", [1])

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError, match="at least one seed"):
            SweepSpec("fig7-mutuality", [])

    def test_non_integer_seeds_rejected(self):
        with pytest.raises(ValueError, match="integers"):
            SweepSpec("fig7-mutuality", ["one", "two"])

    def test_string_seeds_rejected_not_iterated(self):
        # "12" must not silently become seeds (1, 2).
        with pytest.raises(ValueError, match="integers"):
            SweepSpec("fig7-mutuality", "12")

    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            SweepSpec("fig7-mutuality", [1], overrides={"nope": 3})

    def test_duplicate_override_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SweepSpec(
                "fig7-mutuality", [1],
                overrides=[("threshold", 0.1), ("threshold", 0.2)],
            )

    def test_frozen(self):
        spec = SweepSpec("fig7-mutuality", [1])
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.scenario = "other"

    def test_seed_iterables_normalize_to_int_tuples(self):
        assert SweepSpec("fig7-mutuality", range(1, 4)).seeds == (1, 2, 3)


class TestSweepSpecNormalization:
    def test_override_order_does_not_matter(self):
        first = SweepSpec(
            "fig7-mutuality", [1],
            overrides={"threshold": 0.4, "warmup_interactions": 5},
        )
        second = SweepSpec(
            "fig7-mutuality", [1],
            overrides=[("warmup_interactions", 5), ("threshold", 0.4)],
        )
        assert first == second
        assert hash(first) == hash(second)

    def test_container_overrides_normalize_like_registry_params(self):
        spec = SweepSpec(
            "ablation-beta", [1], overrides={"betas": [0.5, 0.9]},
        )
        assert spec.overrides == (("betas", (0.5, 0.9)),)

    def test_params_key_matches_registry(self):
        spec = SweepSpec(
            "fig7-mutuality", [1, 2], smoke=True,
            overrides={"threshold": 0.4},
        )
        expected = registry.get("fig7-mutuality").params_key(
            smoke=True, threshold=0.4
        )
        assert spec.params_key() == expected

    def test_kind_reports_the_scenario_shape(self):
        assert SweepSpec("fig7-mutuality", [1]).kind == "rates"
        assert SweepSpec("fig15-environment", [1]).kind == "series"


class TestSweepSpecSerialization:
    def test_json_round_trip_is_identity(self):
        spec = SweepSpec(
            "fig7-mutuality", [3, 1, 2], smoke=True,
            overrides={"threshold": 0.4, "requests_per_trustor": 3},
        )
        assert SweepSpec.from_json(spec.to_json()) == spec

    def test_tuple_overrides_survive_the_json_list_detour(self):
        spec = SweepSpec(
            "ablation-beta", [1], overrides={"betas": (0.5, 0.9)},
        )
        assert SweepSpec.from_json(spec.to_json()) == spec

    def test_unknown_payload_field_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep spec"):
            SweepSpec.from_payload({
                "scenario": "fig7-mutuality", "seeds": [1], "workers": 4,
            })

    def test_payload_needs_scenario_and_seeds(self):
        with pytest.raises(ValueError, match="scenario and seeds"):
            SweepSpec.from_payload({"scenario": "fig7-mutuality"})

    def test_payload_is_json_safe(self):
        spec = SweepSpec("ablation-beta", [1], overrides={"betas": [0.5]})
        json.dumps(spec.to_payload())  # must not raise


class TestExecutionProfileValidation:
    def test_defaults_are_valid(self):
        profile = ExecutionProfile()
        assert profile.workers == 1
        assert not profile.distributed

    def test_no_cache_with_cache_dir_conflicts(self):
        with pytest.raises(ValueError, match="no_cache"):
            ExecutionProfile(no_cache=True, cache_dir="/tmp/x")

    def test_queue_dir_requires_distributed(self):
        with pytest.raises(ValueError, match="distributed"):
            ExecutionProfile(queue_dir="/tmp/q")

    def test_lease_ttl_requires_distributed(self):
        with pytest.raises(ValueError, match="distributed"):
            ExecutionProfile(lease_ttl=5.0)

    def test_distributed_zero_workers_needs_queue_dir(self):
        with pytest.raises(ValueError, match="queue_dir"):
            ExecutionProfile(workers=0, backend="distributed")

    def test_distributed_zero_workers_with_queue_dir_is_fine(self):
        profile = ExecutionProfile(
            workers=0, backend="distributed", queue_dir="/tmp/q"
        )
        assert profile.distributed

    def test_negative_workers_rejected_everywhere(self):
        with pytest.raises(ValueError, match="workers"):
            ExecutionProfile(workers=0)
        with pytest.raises(ValueError, match="workers"):
            ExecutionProfile(workers=-1, backend="distributed")

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ExecutionProfile(backend="carrier-pigeon")

    def test_bad_chunk_size_and_lease_ttl_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ExecutionProfile(chunk_size=0)
        with pytest.raises(ValueError, match="lease_ttl"):
            ExecutionProfile(
                backend="distributed", queue_dir="/q", lease_ttl=0.0
            )

    def test_path_values_normalize_to_strings(self):
        profile = ExecutionProfile(cache_dir=Path("/tmp/c"))
        assert profile.cache_dir == "/tmp/c"

    def test_legacy_constructor_permits_inline_drain(self):
        profile = ExecutionProfile._legacy(
            workers=0, backend="distributed", no_cache=True
        )
        assert profile.workers == 0 and profile.queue_dir is None
        # ...but out-of-range values still fail in legacy mode.
        with pytest.raises(ValueError, match="workers"):
            ExecutionProfile._legacy(workers=-1, backend="distributed")

    def test_validator_is_shared(self):
        # The standalone validator rejects what the profile rejects.
        with pytest.raises(ValueError, match="no_cache"):
            validate_execution(no_cache=True, cache_dir="/x")
        validate_execution(
            workers=0, backend="distributed", allow_inline_drain=True
        )


class TestExecutionProfileCache:
    def test_no_cache_resolves_to_none(self):
        assert ExecutionProfile(no_cache=True).resolved_cache_dir() is None

    def test_explicit_dir_wins(self):
        profile = ExecutionProfile(cache_dir="/tmp/somewhere")
        assert profile.resolved_cache_dir() == Path("/tmp/somewhere")

    def test_default_is_the_shared_cache(self):
        assert ExecutionProfile().resolved_cache_dir() == default_cache_dir()

    def test_payload_round_trip(self):
        profile = ExecutionProfile(
            workers=3, backend="distributed", chunk_size=2,
            queue_dir="/tmp/q", lease_ttl=9.5,
        )
        assert ExecutionProfile.from_payload(profile.to_payload()) == profile

    def test_unknown_payload_field_rejected(self):
        with pytest.raises(ValueError, match="unknown execution profile"):
            ExecutionProfile.from_payload({"workerz": 2})

    def test_mistyped_payload_values_fail_cleanly(self):
        # A manifest with "workers": "4" must raise ValueError (which
        # the CLI turns into `error: ...` + exit 2), not TypeError.
        with pytest.raises(ValueError, match="workers"):
            ExecutionProfile.from_payload({"workers": "4"})
        with pytest.raises(ValueError, match="chunk_size"):
            ExecutionProfile.from_payload({"chunk_size": "2"})
        with pytest.raises(ValueError, match="lease_ttl"):
            ExecutionProfile.from_payload({
                "backend": "distributed", "lease_ttl": "30",
            })
        with pytest.raises(ValueError, match="no_cache"):
            ExecutionProfile.from_payload({"no_cache": "yes"})


class TestExecutionProfileFaultTolerance:
    def test_defaults_resolve_raise_for_pools(self):
        profile = ExecutionProfile()
        assert profile.max_attempts is None
        assert profile.on_error is None
        assert profile.resolved_on_error() == "raise"

    def test_defaults_resolve_collect_for_distributed(self):
        profile = ExecutionProfile(
            workers=0, backend="distributed", queue_dir="/tmp/q"
        )
        assert profile.resolved_on_error() == "collect"

    def test_explicit_on_error_wins_over_the_backend_default(self):
        assert ExecutionProfile(
            on_error="collect"
        ).resolved_on_error() == "collect"
        assert ExecutionProfile(
            workers=1, backend="distributed", on_error="raise"
        ).resolved_on_error() == "raise"

    def test_resolved_max_attempts_defaults_to_three(self):
        from repro.simulation.faults import DEFAULT_MAX_ATTEMPTS

        assert ExecutionProfile().resolved_max_attempts() == (
            DEFAULT_MAX_ATTEMPTS
        )
        assert ExecutionProfile(
            max_attempts=7
        ).resolved_max_attempts() == 7

    def test_bad_max_attempts_rejected(self):
        with pytest.raises(ValueError, match="max_attempts"):
            ExecutionProfile(max_attempts=0)
        with pytest.raises(ValueError, match="max_attempts"):
            ExecutionProfile(max_attempts=True)
        with pytest.raises(ValueError, match="max_attempts"):
            ExecutionProfile(max_attempts="3")

    def test_bad_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            ExecutionProfile(on_error="explode")
        with pytest.raises(ValueError, match="on_error"):
            validate_execution(on_error="ignore")

    def test_payload_round_trip_carries_the_new_fields(self):
        profile = ExecutionProfile(max_attempts=2, on_error="collect")
        restored = ExecutionProfile.from_payload(profile.to_payload())
        assert restored == profile
        assert restored.max_attempts == 2
        assert restored.on_error == "collect"

    def test_old_payloads_without_the_fields_still_load(self):
        restored = ExecutionProfile.from_payload({"workers": 2})
        assert restored.max_attempts is None
        assert restored.on_error is None


class TestCampaignManifest:
    def test_minimal_manifest(self):
        manifest = load_campaign_manifest(json.dumps({
            "sweeps": [
                {"scenario": "fig7-mutuality", "seeds": [1, 2]},
            ],
        }))
        assert manifest.specs == (SweepSpec("fig7-mutuality", [1, 2]),)
        assert manifest.profile is None

    def test_seed_count_shorthand(self):
        manifest = load_campaign_manifest(json.dumps({
            "sweeps": [
                {"scenario": "fig15-environment", "seed_count": 3,
                 "first_seed": 5},
            ],
        }))
        assert manifest.specs[0].seeds == (5, 6, 7)

    def test_seeds_and_seed_count_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            load_campaign_manifest(json.dumps({
                "sweeps": [
                    {"scenario": "fig15-environment", "seeds": [1],
                     "seed_count": 3},
                ],
            }))

    def test_profile_block_parsed(self):
        manifest = load_campaign_manifest(json.dumps({
            "profile": {"workers": 4, "backend": "thread"},
            "sweeps": [{"scenario": "fig7-mutuality", "seeds": [1]}],
            "name": "nightly",
        }))
        assert manifest.profile == ExecutionProfile(
            workers=4, backend="thread"
        )
        assert manifest.name == "nightly"

    def test_errors_name_the_entry(self):
        with pytest.raises(ValueError, match=r"sweeps\[1\]"):
            load_campaign_manifest(json.dumps({
                "sweeps": [
                    {"scenario": "fig7-mutuality", "seeds": [1]},
                    {"scenario": "fig7-mutuality"},
                ],
            }))

    def test_bad_json_and_shapes_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            load_campaign_manifest("{nope")
        with pytest.raises(ValueError, match="JSON object"):
            load_campaign_manifest("[1]")
        with pytest.raises(ValueError, match="sweeps"):
            load_campaign_manifest("{}")
        with pytest.raises(ValueError, match="unknown campaign"):
            load_campaign_manifest(json.dumps({
                "sweeps": [{"scenario": "fig7-mutuality", "seeds": [1]}],
                "extra": 1,
            }))


class TestCampaignLabels:
    def test_unique_scenarios_keep_their_names(self):
        specs = [
            SweepSpec("fig7-mutuality", [1]),
            SweepSpec("fig15-environment", [1]),
        ]
        assert campaign_labels(specs) == (
            "fig7-mutuality", "fig15-environment",
        )

    def test_repeats_get_numbered(self):
        specs = [
            SweepSpec("fig7-mutuality", [1]),
            SweepSpec("fig7-mutuality", [2]),
            SweepSpec("fig7-mutuality", [3]),
        ]
        assert campaign_labels(specs) == (
            "fig7-mutuality", "fig7-mutuality#2", "fig7-mutuality#3",
        )
