"""The paper's motivating story (Section 4.2, Fig. 3): can Alice judge
Bob's smartphone for real-time traffic monitoring from its GPS and
image-data history?

Demonstrates characteristic-based inference (Eq. 2-4) and why a model
that treats tasks as opaque labels cannot transfer any trust, plus the
two transitivity schemes (Eq. 8-17) when the information sits behind
intermediate nodes.

Run:  python examples/traffic_monitoring.py
"""

from repro.core.inference import CharacteristicInferrer, infer_or_default
from repro.core.task import Task
from repro.core.transitivity import (
    MappingKnowledge,
    TransitivityMode,
    TrustTransitivity,
)


def direct_inference() -> None:
    print("=== direct inference (Fig. 3) ===")
    gps_history = Task("gps-readings", characteristics=("gps",))
    image_history = Task("image-monitoring", characteristics=("image",))
    # Alice's past experience with Bob's smartphone:
    experience = [(gps_history, 0.92), (image_history, 0.78)]

    # The new task needs both characteristics, GPS mattering more.
    traffic = Task(
        "real-time-traffic",
        characteristics=("gps", "image"),
        weights={"gps": 2.0, "image": 1.0},
    )

    inferrer = CharacteristicInferrer()
    inferred = inferrer.infer(traffic, experience)
    print(f"inferred trustworthiness of Bob for {traffic.name!r}: "
          f"{inferred.value:.3f}")
    for characteristic, estimate in inferrer.explain(
        traffic, experience
    ).items():
        print(f"  {characteristic}: {estimate.estimate:.2f} "
              f"(from {', '.join(estimate.supporting_tasks)})")

    # The existing models' answer: nothing transfers.
    opaque = infer_or_default(
        inferrer, Task("real-time-traffic-opaque"), experience
    )
    print(f"without the characteristic model: {opaque} "
          "(no trust transfers to a 'new' task)\n")


def transitive_inference() -> None:
    print("=== transitivity with restrictions (Section 4.3) ===")
    knowledge = MappingKnowledge()
    gps = Task("gps-readings", characteristics=("gps",))
    image = Task("image-monitoring", characteristics=("image",))

    # Alice has no direct history with Dale; trust must travel:
    #   alice -> bob  -> dale   (gps experience)
    #   alice -> carol -> dale  (image experience)
    knowledge.add_experience("alice", "bob", gps, 0.9)
    knowledge.add_experience("bob", "dale", gps, 0.85)
    knowledge.add_experience("alice", "carol", image, 0.88)
    knowledge.add_experience("carol", "dale", image, 0.8)

    traffic = Task("traffic", characteristics=("gps", "image"))
    engine = TrustTransitivity(
        knowledge, omega_recommend=0.5, omega_execute=0.5, max_depth=2
    )

    for mode in TransitivityMode:
        found = engine.find_trustees("alice", traffic, mode)
        if found:
            summary = ", ".join(
                f"{node}={trust.value:.3f}" for node, trust in found.items()
            )
        else:
            summary = "(no potential trustee)"
        print(f"  {mode.value:>12}: {summary}")
    print("  -> only the aggressive scheme assembles the two"
          " characteristics over different paths (Eq. 12-17)")


if __name__ == "__main__":
    direct_inference()
    transitive_inference()
