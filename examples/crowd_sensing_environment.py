"""Crowd sensing under a changing environment (Sections 4.5 / 5.7).

A fleet of optical-sensor devices serves image-acquisition tasks while
the ambient light changes (light -> dark -> light), and malicious
devices join only when conditions look favourable.  Compares trustors
that de-bias observations with the Cannikin r(.) rule (Eq. 29) against
trustors that take observations at face value — the Fig. 16 experiment
— and shows the Fig. 15 tracking curves behind it.

Run:  python examples/crowd_sensing_environment.py
"""

from repro.analysis.ascii_chart import ascii_chart
from repro.analysis.series import LabelledSeries
from repro.iotnet.experiments import LightingExperiment
from repro.simulation.config import EnvironmentConfig
from repro.simulation.environment import EnvironmentSimulation


def tracking_curves() -> None:
    print("=== Fig. 15: tracking intrinsic competence through weather ===")
    simulation = EnvironmentSimulation(EnvironmentConfig(runs=60), seed=4)
    result = simulation.run()
    print(ascii_chart(
        [
            LabelledSeries("proposed r(.)", result.proposed.values),
            LabelledSeries("traditional", result.traditional.values),
            LabelledSeries("effective rate", result.effective_rate.values),
        ],
        width=64, height=12,
        title="expected success rate; environment 1.0 -> 0.4 -> 0.7",
    ))
    errors = simulation.tracking_errors(result)
    print(f"mean absolute tracking error: proposed "
          f"{errors['proposed']:.3f} vs traditional "
          f"{errors['traditional']:.3f}\n")


def lighting_experiment() -> None:
    print("=== Fig. 16: optical sensors, LIGHT / DARK / LIGHT ===")
    result = LightingExperiment(seed=4).run()
    print(ascii_chart(
        [
            LabelledSeries("with proposed model", result.with_model),
            LabelledSeries("without proposed model", result.without_model),
        ],
        width=64, height=12,
        title="total net profit per experiment",
    ))
    with_final = result.final_phase_mean(result.with_model)
    without_final = result.final_phase_mean(result.without_model)
    print(f"final light period: with model {with_final:.0f} vs "
          f"without {without_final:.0f}")
    print("  -> de-biasing keeps trust in the normal devices through the"
          " dark period, so they are re-selected when light returns")


if __name__ == "__main__":
    tracking_curves()
    lighting_experiment()
