"""Reputation attacks against the recommendation layer (Section 2's
threat taxonomy; Section 6's detection claim).

Runs the four adversaries — self-promoting, bad-mouthing,
ballot-stuffing, opportunistic — at a 50 % attacker ratio and compares a
naive mean of recommendations against the credibility-weighted
aggregation the trust model implies.

Run:  python examples/reputation_attacks.py
"""

from repro.core.attacks import (
    BadMouthingAttacker,
    BallotStuffingAttacker,
    OpportunisticServiceAttacker,
    SelfPromotingAttacker,
    run_attack_scenario,
)

SCENARIOS = [
    ("bad-mouthing (smear a good node)",
     lambda i: BadMouthingAttacker(), 0.8),
    ("ballot-stuffing (inflate a bad node)",
     lambda i: BallotStuffingAttacker(coalition=frozenset({"target"})), 0.2),
    ("self-promoting",
     lambda i: SelfPromotingAttacker(), 0.5),
    ("opportunistic (honest, then exploit)",
     lambda i: OpportunisticServiceAttacker(honest_phase=5), 0.8),
]


def main() -> None:
    print("6 honest recommenders vs 6 attackers, 80 feedback rounds\n")
    header = (f"{'attack':<38} {'truth':>6} {'naive':>7} "
              f"{'defended':>9}")
    print(header)
    print("-" * len(header))
    for label, factory, target in SCENARIOS:
        result = run_attack_scenario(
            target_trust=target,
            honest_count=6,
            attacker_factory=factory,
            attacker_count=6,
            rounds=80,
            seed=7,
        )
        print(f"{label:<38} {result.target_true_trust:>6.2f} "
              f"{result.naive_estimate:>7.2f} "
              f"{result.defended_estimate:>9.2f}")
    print(
        "\n-> the naive mean is dragged toward the attackers' claims;"
        "\n   weighting recommendations by observed recommender accuracy"
        "\n   (and ignoring self-claims) keeps the estimate near the truth."
    )


if __name__ == "__main__":
    main()
