"""Quickstart: the trust process end to end on a generated social IoT.

Builds the Twitter-calibrated network, populates trustor/trustee agents,
and runs delegation rounds through the full pipeline of the paper's
model: pre-evaluation (with characteristic inference), reverse
evaluation (Eq. 1), action, and post-evaluation (Eq. 19-22).

Run:  python examples/quickstart.py
"""

import random

from repro.core.agent import (
    HonestTrusteeBehavior,
    ResponsibleTrustorBehavior,
    TrusteeAgent,
    TrustorAgent,
)
from repro.core.engine import DelegationEngine, DelegationStatus
from repro.core.inference import CharacteristicInferrer
from repro.core.policy import NetProfitPolicy
from repro.core.task import Task
from repro.socialnet import connectivity_report, twitter


def main() -> None:
    rng = random.Random(7)

    # 1. The social substrate: a network calibrated to the paper's
    #    Twitter sub-network (Table 1).
    graph = twitter(seed=0)
    report = connectivity_report(graph, with_communities=False)
    print(f"network: {graph.name}, {report.nodes} nodes, "
          f"{report.edges} edges, avg degree "
          f"{report.average_degree:.1f}")

    # 2. Agents: one trustor, a handful of candidate trustees with
    #    different hidden competence and stakes.
    trustor = TrustorAgent(
        node_id="alice",
        behavior=ResponsibleTrustorBehavior(responsibility=0.95),
    )
    trustees = [
        TrusteeAgent(
            node_id=f"device-{index}",
            behavior=HonestTrusteeBehavior(
                competence=rng.uniform(0.3, 0.95),
                gain=rng.uniform(0.4, 1.0),
                damage=rng.uniform(0.0, 0.6),
                cost=rng.uniform(0.0, 0.3),
            ),
        )
        for index in range(6)
    ]

    # 3. The engine: net-profit selection (Eq. 23) + inference across
    #    analogous tasks (Eq. 4).
    engine = DelegationEngine(
        policy=NetProfitPolicy(),
        inferrer=CharacteristicInferrer(),
        rng=rng,
    )

    # 4. Learn by delegating a GPS task many times.
    gps_task = Task("gps-readings", characteristics=("gps",))
    outcomes = [
        engine.delegate(trustor, gps_task, trustees) for _ in range(120)
    ]
    successes = sum(
        1 for o in outcomes if o.status is DelegationStatus.SUCCESS
    )
    print(f"gps task: {successes}/120 delegations succeeded")

    # 5. A brand-new task that *shares a characteristic* — trust is
    #    inferred rather than reset (Section 4.2).
    traffic_task = Task(
        "real-time-traffic", characteristics=("gps",),
    )
    ranked = engine.rank_candidates(trustor, traffic_task, trustees)
    print("inferred ranking for the unseen 'real-time-traffic' task:")
    for trustee, score in ranked[:3]:
        behavior = trustee.behavior
        print(f"  {trustee.node_id}: score {score:+.3f} "
              f"(hidden competence {behavior.competence:.2f}, "
              f"gain {behavior.gain:.2f}, cost {behavior.cost:.2f})")

    best = ranked[0][0]
    outcome = engine.delegate(trustor, traffic_task, trustees)
    print(f"delegated to {outcome.trustee} -> {outcome.status.value} "
          f"(expected best: {best.node_id})")


if __name__ == "__main__":
    main()
