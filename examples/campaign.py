"""Campaign quickstart: a regression campaign through the job API.

Describes a small campaign with :class:`repro.api.SweepSpec` (what to
run) and :class:`repro.api.ExecutionProfile` (how to run it), submits
it non-blockingly through :class:`repro.api.Client`, and collects the
per-scenario exports — the programmatic equivalent of::

    repro campaign manifest.json --out-dir exports/

Run:  python examples/campaign.py
"""

import tempfile
from pathlib import Path

from repro.api import Client, ExecutionProfile, SweepSpec


def main() -> None:
    # 1. What to run: three of the paper's scenarios, CI-sized (smoke)
    #    parameters, three seeds each.  Specs are frozen, validated and
    #    JSON-serializable — spec.to_json() is a campaign manifest line.
    specs = [
        SweepSpec("fig7-mutuality", seeds=[1, 2, 3], smoke=True),
        SweepSpec("fig15-environment", seeds=[1, 2, 3], smoke=True),
        SweepSpec(
            "fig7-mutuality", seeds=[1, 2, 3], smoke=True,
            overrides={"threshold": 0.6},
        ),
    ]

    # 2. How to run it: two worker processes, private cache.  Swap in
    #    backend="distributed" + queue_dir=... and the same campaign
    #    multiplexes over a shared `repro worker` fleet instead.
    work_dir = Path(tempfile.mkdtemp(prefix="repro-campaign-"))
    profile = ExecutionProfile(
        workers=2, cache_dir=str(work_dir / "cache"),
    )

    # 3. Submit and watch.  submit_campaign returns immediately; the
    #    handle exposes status()/progress()/wait()/result()/cancel().
    client = Client(profile)
    handle = client.submit_campaign(specs)
    print(f"submitted {len(specs)} sweeps; status={handle.status()}")
    handle.wait()
    completed, total = handle.progress()
    print(f"campaign finished: {completed}/{total} sweeps")

    # 4. Collect.  Results are bit-identical to per-scenario run_sweep
    #    calls; write_exports drops one standard sweep export per spec
    #    (repeats get #2/#3-suffixed labels).
    result = handle.result()
    for label, sweep in result.by_label().items():
        timing = sweep.timing
        print(
            f"  {label:<22} {timing.seeds} seeds in "
            f"{timing.wall_seconds:.2f}s "
            f"({sweep.cache_hits} cache hit(s))"
        )
    paths = result.write_exports(work_dir / "exports")
    print(f"exports: {len(paths)} file(s) under {work_dir / 'exports'}")


if __name__ == "__main__":
    main()
