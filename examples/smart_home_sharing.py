"""The camera-sharing story of Section 4.1: Alice wants to use Bob's
camera, and Bob wants to be sure Alice will not abuse it.

Demonstrates mutual evaluation (Eq. 1): the trustee's reverse evaluation
protects it from abusive trustors, and the threshold θ trades service
availability against abuse — the Fig. 7 effect, shown here on a single
household and then summarized over a whole network.

Run:  python examples/smart_home_sharing.py
"""

import random

from repro.core.agent import (
    HonestTrusteeBehavior,
    ResponsibleTrustorBehavior,
    TrusteeAgent,
    TrustorAgent,
)
from repro.core.engine import DelegationEngine, DelegationStatus
from repro.core.task import Task
from repro.simulation.mutuality import sweep_thresholds
from repro.socialnet import facebook


def single_household() -> None:
    print("=== one household: Alice, Mallory and Bob's camera ===")
    rng = random.Random(3)
    camera_task = Task("camera-feed", characteristics=("image",))

    alice = TrustorAgent(
        node_id="alice",
        behavior=ResponsibleTrustorBehavior(responsibility=0.95),
    )
    mallory = TrustorAgent(
        node_id="mallory",
        behavior=ResponsibleTrustorBehavior(responsibility=0.15),
    )
    bob_camera = TrusteeAgent(
        node_id="bob-camera",
        behavior=HonestTrusteeBehavior(competence=0.97, gain=1.0),
        thresholds={"camera-feed": 0.6},  # theta_y(tau) of Eq. 1
    )

    engine = DelegationEngine(rng=rng)
    for requester in (alice, mallory):
        served = 0
        refused = 0
        for _ in range(40):
            outcome = engine.delegate(requester, camera_task, [bob_camera])
            if outcome.status is DelegationStatus.UNAVAILABLE:
                refused += 1
            else:
                served += 1
        reverse = bob_camera.store.responsible_fraction(requester.node_id)
        print(f"  {requester.node_id}: served {served}, refused {refused}, "
              f"reverse trust now {reverse:.2f}"
              if reverse is not None else
              f"  {requester.node_id}: never served")
    print("  -> Bob's camera learns Mallory's usage pattern from its logs"
          " and starts refusing her requests\n")


def network_sweep() -> None:
    print("=== the Fig. 7 effect on the Facebook-calibrated network ===")
    graph = facebook(seed=0)
    for result in sweep_thresholds(graph, thresholds=(0.0, 0.3, 0.6),
                                   seed=2):
        rates = result.rates
        print(f"  theta={result.threshold:.1f}: "
              f"success {rates.success_rate:.2f}, "
              f"unavailable {rates.unavailable_rate:.2f}, "
              f"abuse {rates.abuse_rate:.2f}")
    print("  -> raising theta starves abusive trustors (abuse down)"
          " at the cost of unanswered requests (unavailable up)")


if __name__ == "__main__":
    single_household()
    network_sweep()
