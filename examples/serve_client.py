"""HTTP service quickstart: ``repro serve`` and ``RemoteClient``.

Starts a :class:`repro.service.JobServer` in-process (the library form
of ``repro serve 127.0.0.1:0``), then drives it with
:class:`repro.service.RemoteClient` — the over-the-wire mirror of
:class:`repro.api.Client`: the same ``submit()`` → handle → ``result()``
shape, except the caller can live in another process or on another
machine.  The script walks the whole surface: submit, poll, fetch a
real :class:`SweepResult`, cancel a queued job honestly, and read the
structured error a bad spec gets back.

Run:  python examples/serve_client.py
"""

from repro.api import CancelledError, ExecutionProfile, SweepSpec
from repro.service import JobServer, RemoteClient, ServiceError


def main() -> None:
    # 1. The server side.  ``repro serve 127.0.0.1:8765`` does exactly
    #    this at the CLI; port 0 means "pick a free port".  One server
    #    multiplexes every HTTP client onto one worker fleet.
    with JobServer(profile=ExecutionProfile(no_cache=True)) as server:
        print(f"serving {server.url}")

        # 2. The client side — point it at any repro serve URL.
        client = RemoteClient(server.url, poll_interval=0.05)
        print(f"health: {client.health()['status']}")

        # 3. Submit and block for a real SweepResult, exactly like the
        #    in-process Client facade.  result()/wait() ride the
        #    server's ``?wait=`` long-poll, so a blocked caller costs a
        #    handful of requests, not one per poll_interval (pass
        #    long_poll=False to RemoteClient for plain polling).
        spec = SweepSpec("fig7-mutuality", seeds=[1, 2], smoke=True)
        handle = client.submit(spec)
        print(f"submitted {handle.job_id} ({handle.status()})")
        sweep = handle.result(timeout=300)
        print(
            f"{sweep.scenario}: success rate "
            f"{sweep.mean.success_rate:.3f} over {len(sweep.seeds)} "
            f"seed(s)"
        )

        # 4. Honest cancellation: a queued job never runs.  (With the
        #    default single dispatcher, the second submission queues
        #    behind the first.)
        blocker = client.submit(
            SweepSpec("fig15-environment", seeds=[1, 2], smoke=True)
        )
        victim = client.submit(
            SweepSpec("fig7-mutuality", seeds=[99], smoke=True)
        )
        print(f"cancel {victim.job_id}: {victim.cancel()}")
        try:
            victim.result(timeout=5)
        except CancelledError:
            print(f"{victim.job_id} is {victim.status()}: no result")
        blocker.result(timeout=300)

        # 5. Failure semantics are structured, never a hung poll: a
        #    malformed spec is an immediate 400 with the same message
        #    in-process validation raises.
        try:
            client.submit({"scenario": "fig99-nope", "seeds": [1]})
        except ServiceError as error:
            print(f"rejected ({error.status}): {error}")

        states = [job["state"] for job in client.jobs()]
        print(f"job states this session: {sorted(states)}")


if __name__ == "__main__":
    main()
